package summarize

// This file carries a reference implementation of the greedy engine — the
// original map-and-pointer workset (map-keyed solution and Delta-Judgment
// cache, per-call sorted-id slices, binary-search delta updates) — and
// equivalence tests proving the dense engine (generation-stamped arrays,
// sorted id list, last-delta bitset, LCA memo, pooled replay states)
// produces bit-identical solutions for every algorithm, on synthetic spaces
// and on a MovieLens-derived space built through the SQL front end.
//
// Both sides assemble their final Solution from cluster ids in ascending
// order, so coverage unions and floating-point sums accumulate in the same
// order and the comparison can demand exact bit equality (math.Float64bits)
// rather than tolerances.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"qagview/internal/engine"
	"qagview/internal/kmodes"
	"qagview/internal/lattice"
	"qagview/internal/movielens"
	"qagview/internal/pattern"
	"qagview/internal/relation"
)

// ---- reference workset (the pre-dense implementation) ----

type refWorkset struct {
	ix    *lattice.Index
	delta bool
	obj   Objective

	clusters map[int32]*lattice.Cluster
	covered  bitset
	sum      float64
	cnt      int

	round     int
	lastDelta []int32

	cache map[int32]*refDeltaEntry
}

type refDeltaEntry struct {
	asOf int
	dsum float64
	dcnt int
}

func newRefWorkset(ix *lattice.Index, useDelta bool) *refWorkset {
	return &refWorkset{
		ix:       ix,
		delta:    useDelta,
		clusters: make(map[int32]*lattice.Cluster),
		covered:  newBitset(ix.Space.N()),
		cache:    make(map[int32]*refDeltaEntry),
	}
}

func (ws *refWorkset) size() int { return len(ws.clusters) }

func refContainsSorted(cov []int32, t int32) bool {
	i := sort.Search(len(cov), func(i int) bool { return cov[i] >= t })
	return i < len(cov) && cov[i] == t
}

func (ws *refWorkset) marginal(c *lattice.Cluster) (dsum float64, dcnt int) {
	if ws.delta {
		if e, ok := ws.cache[c.ID]; ok {
			switch {
			case e.asOf == ws.round:
				return e.dsum, e.dcnt
			case e.asOf == ws.round-1:
				for _, t := range ws.lastDelta {
					if refContainsSorted(c.Cov, t) {
						e.dsum -= ws.ix.Space.Vals[t]
						e.dcnt--
					}
				}
				e.asOf = ws.round
				return e.dsum, e.dcnt
			}
		}
	}
	for _, t := range c.Cov {
		if !ws.covered.has(t) {
			dsum += ws.ix.Space.Vals[t]
			dcnt++
		}
	}
	if ws.delta {
		ws.cache[c.ID] = &refDeltaEntry{asOf: ws.round, dsum: dsum, dcnt: dcnt}
	}
	return dsum, dcnt
}

func (ws *refWorkset) evalAdd(c *lattice.Cluster) float64 {
	dsum, dcnt := ws.marginal(c)
	if ws.obj == MinSize {
		return -float64(ws.cnt + dcnt)
	}
	if ws.cnt+dcnt == 0 {
		return 0
	}
	return (ws.sum + dsum) / float64(ws.cnt+dcnt)
}

func (ws *refWorkset) add(c *lattice.Cluster) {
	for id, old := range ws.clusters {
		if id != c.ID && c.Pat.Covers(old.Pat) {
			delete(ws.clusters, id)
		}
	}
	ws.clusters[c.ID] = c
	var newly []int32
	for _, t := range c.Cov {
		if !ws.covered.has(t) {
			ws.covered.set(t)
			ws.sum += ws.ix.Space.Vals[t]
			ws.cnt++
			newly = append(newly, t)
		}
	}
	ws.round++
	ws.lastDelta = newly
}

func (ws *refWorkset) merge(a, b *lattice.Cluster) (*lattice.Cluster, error) {
	lca, err := ws.ix.LCACluster(a, b)
	if err != nil {
		return nil, err
	}
	ws.add(lca)
	return lca, nil
}

func (ws *refWorkset) sortedIDs() []int32 {
	ids := make([]int32, 0, len(ws.clusters))
	for id := range ws.clusters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// solution assembles the reference solution from ids in ascending order, the
// same order the dense engine uses, so the comparison can be bitwise.
func (ws *refWorkset) solution() *Solution {
	ids := ws.sortedIDs()
	out := make([]*lattice.Cluster, 0, len(ids))
	for _, id := range ids {
		out = append(out, ws.ix.Cluster(id))
	}
	return newSolution(ws.ix, out)
}

func (ws *refWorkset) clone() *refWorkset {
	c := newRefWorkset(ws.ix, ws.delta)
	c.obj = ws.obj
	for id, cl := range ws.clusters {
		c.clusters[id] = cl
	}
	c.covered = ws.covered.clone()
	c.sum = ws.sum
	c.cnt = ws.cnt
	return c
}

// ---- reference pair set ----

type refPairSet struct {
	ws    *refWorkset
	pairs []pairInfo
}

func newRefPairSet(ws *refWorkset) *refPairSet {
	ps := &refPairSet{ws: ws}
	ids := ws.sortedIDs()
	for i, a := range ids {
		ca := ws.clusters[a]
		for _, b := range ids[i+1:] {
			cb := ws.clusters[b]
			ps.pairs = append(ps.pairs, pairInfo{
				a: a, b: b, lca: -1,
				dist: int32(pattern.Distance(ca.Pat, cb.Pat)),
			})
		}
	}
	return ps
}

func (ps *refPairSet) best(filter func(dist int) bool, eval evaluator) (pairInfo, bool) {
	alive := ps.pairs[:0]
	var best pairInfo
	bestVal := 0.0
	found := false
	for _, pi := range ps.pairs {
		if _, ok := ps.ws.clusters[pi.a]; !ok {
			continue
		}
		if _, ok := ps.ws.clusters[pi.b]; !ok {
			continue
		}
		alive = append(alive, pi)
		if filter != nil && !filter(int(pi.dist)) {
			continue
		}
		idx := len(alive) - 1
		if alive[idx].lca < 0 {
			lca, err := ps.ws.ix.LCACluster(ps.ws.clusters[pi.a], ps.ws.clusters[pi.b])
			if err != nil {
				panic(err)
			}
			alive[idx].lca = lca.ID
		}
		v := eval(ps.ws.ix.Cluster(alive[idx].lca))
		if !found || v > bestVal {
			found = true
			bestVal = v
			best = alive[idx]
		}
	}
	ps.pairs = alive
	return best, found
}

func (ps *refPairSet) merge(pi pairInfo) error {
	a, b := ps.ws.clusters[pi.a], ps.ws.clusters[pi.b]
	lca, err := ps.ws.merge(a, b)
	if err != nil {
		return err
	}
	for _, id := range ps.ws.sortedIDs() {
		if id == lca.ID {
			continue
		}
		other := ps.ws.clusters[id]
		x, y := lca.ID, id
		if x > y {
			x, y = y, x
		}
		ps.pairs = append(ps.pairs, pairInfo{
			a: x, b: y, lca: -1,
			dist: int32(pattern.Distance(lca.Pat, other.Pat)),
		})
	}
	return nil
}

func refBottomUpPhases(ws *refWorkset, p Params, eval evaluator) error {
	ps := newRefPairSet(ws)
	for {
		pi, ok := ps.best(func(d int) bool { return d < p.D }, eval)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return err
		}
	}
	for ws.size() > p.K {
		pi, ok := ps.best(nil, eval)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return err
		}
	}
	return nil
}

// ---- reference fixed-order phase ----

func refFixedOrderProcess(ws *refWorkset, p Params, cand *lattice.Cluster) error {
	for _, c := range ws.clusters {
		if c.Pat.Covers(cand.Pat) {
			return nil
		}
	}
	if ws.size() < p.K {
		minDist := int(^uint(0) >> 1)
		for _, c := range ws.clusters {
			if d := pattern.Distance(cand.Pat, c.Pat); d < minDist {
				minDist = d
			}
		}
		if ws.size() == 0 || minDist >= p.D {
			ws.add(cand)
			return nil
		}
		return refMergeBestPartner(ws, cand, func(d int) bool { return d < p.D })
	}
	return refMergeBestPartner(ws, cand, nil)
}

func refMergeBestPartner(ws *refWorkset, cand *lattice.Cluster, filter func(dist int) bool) error {
	var best *lattice.Cluster
	bestVal := 0.0
	for _, id := range ws.sortedIDs() {
		c := ws.clusters[id]
		if filter != nil && !filter(pattern.Distance(cand.Pat, c.Pat)) {
			continue
		}
		lca, err := ws.ix.LCACluster(c, cand)
		if err != nil {
			return err
		}
		v := ws.evalAdd(lca)
		if best == nil || v > bestVal {
			best = lca
			bestVal = v
		}
	}
	if best == nil {
		panic("summarize: no merge partner (reference)")
	}
	ws.add(best)
	return nil
}

func refFixedOrderPhase(ws *refWorkset, p Params, seeds []*lattice.Cluster) error {
	for _, s := range seeds {
		if err := refFixedOrderProcess(ws, p, s); err != nil {
			return err
		}
	}
	for rank := 0; rank < p.L; rank++ {
		if ws.covered.has(int32(rank)) {
			continue
		}
		if err := refFixedOrderProcess(ws, p, ws.ix.Singleton(rank)); err != nil {
			return err
		}
	}
	return nil
}

// ---- reference algorithm drivers ----

func refRun(algo Algorithm, ix *lattice.Index, p Params, opts ...Option) (*Solution, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := newRefWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	switch algo {
	case AlgoBottomUp, AlgoBottomUpMaxLCA:
		for rank := 0; rank < p.L; rank++ {
			ws.add(ix.Singleton(rank))
		}
		eval := ws.evalAdd
		if algo == AlgoBottomUpMaxLCA {
			eval = func(lca *lattice.Cluster) float64 { return lca.Avg() }
		}
		if err := refBottomUpPhases(ws, p, eval); err != nil {
			return nil, err
		}
	case AlgoBottomUpLevelStart:
		level := levelStartLevel(p.D, ix.Space.M())
		for rank := 0; rank < p.L; rank++ {
			anc := ix.Space.Tuples[rank].Clone()
			for j := len(anc) - level; j < len(anc); j++ {
				anc[j] = pattern.Star
			}
			c, ok := ix.Lookup(anc)
			if !ok {
				panic("summarize: level-start ancestor missing from index (reference)")
			}
			skip := false
			for _, cur := range ws.clusters {
				if cur.Pat.Covers(c.Pat) {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			ws.add(c)
		}
		if err := refBottomUpPhases(ws, p, ws.evalAdd); err != nil {
			return nil, err
		}
	case AlgoFixedOrder:
		if err := refFixedOrderPhase(ws, p, nil); err != nil {
			return nil, err
		}
	case AlgoHybrid:
		if cfg.hybridC < 1 {
			cfg.hybridC = 1
		}
		pool := p
		pool.K = cfg.hybridC * p.K
		if err := refFixedOrderPhase(ws, pool, nil); err != nil {
			return nil, err
		}
		if err := refBottomUpPhases(ws, p, ws.evalAdd); err != nil {
			return nil, err
		}
	case AlgoRandomFixedOrder:
		k := p.K
		if k > p.L {
			k = p.L
		}
		var seeds []*lattice.Cluster
		for _, rank := range cfg.rng.Perm(p.L)[:k] {
			seeds = append(seeds, ix.Singleton(rank))
		}
		if err := refFixedOrderPhase(ws, p, seeds); err != nil {
			return nil, err
		}
	case AlgoKMeansFixedOrder:
		topL := make([][]int32, p.L)
		for rank := 0; rank < p.L; rank++ {
			topL[rank] = ix.Space.Tuples[rank]
		}
		km, err := kmodes.Cluster(topL, p.K, cfg.rng, 50)
		if err != nil {
			return nil, err
		}
		var seeds []*lattice.Cluster
		for _, members := range km.Members() {
			if len(members) == 0 {
				continue
			}
			pat := pattern.FromTuple(topL[members[0]])
			for _, mi := range members[1:] {
				pattern.LCAInto(pat, pat, pattern.FromTuple(topL[mi]))
			}
			c, ok := ix.Lookup(pat)
			if !ok {
				return nil, fmt.Errorf("summarize: k-modes seed %v missing from index (reference)", pat)
			}
			seeds = append(seeds, c)
		}
		if err := refFixedOrderPhase(ws, p, seeds); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("refRun: unsupported algorithm %q", algo)
	}
	return ws.solution(), nil
}

// refRunD is the reference per-D sweep replay (clone-based, no pooling).
func refRunD(base *refWorkset, D, kMin int) (*SweepStates, error) {
	ws := base.clone()
	ps := newRefPairSet(ws)
	for {
		pi, ok := ps.best(func(d int) bool { return d < D }, ws.evalAdd)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return nil, err
		}
	}
	out := &SweepStates{D: D}
	snapshot := func() {
		st := SweepState{Size: ws.size(), Sum: ws.sum, Count: ws.cnt}
		st.Clusters = ws.sortedIDs()
		out.States = append(out.States, st)
	}
	snapshot()
	for ws.size() > kMin {
		pi, ok := ps.best(nil, ws.evalAdd)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return nil, err
		}
		snapshot()
	}
	return out, nil
}

// ---- equivalence assertions ----

func assertBitIdentical(t *testing.T, label string, dense, ref *Solution) {
	t.Helper()
	if dense.Size() != ref.Size() {
		t.Fatalf("%s: dense has %d clusters, reference %d", label, dense.Size(), ref.Size())
	}
	for i := range dense.Clusters {
		if dense.Clusters[i].ID != ref.Clusters[i].ID {
			t.Fatalf("%s: cluster %d is id %d dense vs %d reference",
				label, i, dense.Clusters[i].ID, ref.Clusters[i].ID)
		}
	}
	if len(dense.Covered) != len(ref.Covered) {
		t.Fatalf("%s: covered %d dense vs %d reference", label, len(dense.Covered), len(ref.Covered))
	}
	for i := range dense.Covered {
		if dense.Covered[i] != ref.Covered[i] {
			t.Fatalf("%s: covered[%d] = %d dense vs %d reference", label, i, dense.Covered[i], ref.Covered[i])
		}
	}
	if math.Float64bits(dense.Sum) != math.Float64bits(ref.Sum) {
		t.Fatalf("%s: Sum %v (%x) dense vs %v (%x) reference",
			label, dense.Sum, math.Float64bits(dense.Sum), ref.Sum, math.Float64bits(ref.Sum))
	}
}

var equivalenceAlgos = []Algorithm{
	AlgoBottomUp, AlgoFixedOrder, AlgoHybrid,
	AlgoBottomUpMaxLCA, AlgoBottomUpLevelStart,
	AlgoRandomFixedOrder, AlgoKMeansFixedOrder,
}

func checkEquivalenceGrid(t *testing.T, name string, ix *lattice.Index, params []Params) {
	t.Helper()
	for _, p := range params {
		for _, useDelta := range []bool{true, false} {
			for _, algo := range equivalenceAlgos {
				label := fmt.Sprintf("%s/%s/%+v/delta=%v", name, algo, p, useDelta)
				// Separate rng instances with the same seed keep the random
				// variants' draws aligned between the two engines.
				dense, err := Run(algo, ix, p, WithDelta(useDelta), WithRand(rand.New(rand.NewSource(99))))
				if err != nil {
					t.Fatalf("%s: dense: %v", label, err)
				}
				ref, err := refRun(algo, ix, p, WithDelta(useDelta), WithRand(rand.New(rand.NewSource(99))))
				if err != nil {
					t.Fatalf("%s: reference: %v", label, err)
				}
				assertBitIdentical(t, label, dense, ref)
			}
		}
	}
}

// TestDenseEngineMatchesReferenceSynthetic proves the dense engine against
// the reference on random synthetic spaces over a parameter grid, all
// algorithms, delta on and off.
func TestDenseEngineMatchesReferenceSynthetic(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		ix := randomIndex(t, 900+seed, 120, 5, 3, 30)
		checkEquivalenceGrid(t, fmt.Sprintf("seed%d", seed), ix, []Params{
			{K: 1, L: 10, D: 0},
			{K: 4, L: 30, D: 2},
			{K: 8, L: 15, D: 3},
			{K: 6, L: 30, D: 5},
			{K: 25, L: 30, D: 1},
		})
	}
}

// TestDenseEngineMatchesReferenceMinSize repeats the grid under the MinSize
// objective, exercising evalAdd's negated-count branch end to end.
func TestDenseEngineMatchesReferenceMinSize(t *testing.T) {
	ix := randomIndex(t, 950, 120, 4, 4, 30)
	for _, p := range []Params{{K: 4, L: 30, D: 2}, {K: 8, L: 20, D: 1}} {
		for _, algo := range []Algorithm{AlgoBottomUp, AlgoFixedOrder, AlgoHybrid} {
			label := fmt.Sprintf("minsize/%s/%+v", algo, p)
			dense, err := Run(algo, ix, p, WithObjective(MinSize))
			if err != nil {
				t.Fatalf("%s: dense: %v", label, err)
			}
			ref, err := refRun(algo, ix, p, WithObjective(MinSize))
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}
			assertBitIdentical(t, label, dense, ref)
		}
	}
}

// TestDenseSweeperMatchesReference proves the pooled replay path: every
// (D, kMin) trace from the pooled Sweeper must be bit-identical to the
// reference clone-based replay, including on repeated (pool-reusing) calls.
func TestDenseSweeperMatchesReference(t *testing.T) {
	ix := randomIndex(t, 960, 150, 4, 4, 30)
	kMax := 10
	sw, err := NewSweeper(ix, 30, kMax)
	if err != nil {
		t.Fatal(err)
	}
	refBase := newRefWorkset(ix, true)
	if err := refFixedOrderPhase(refBase, Params{K: kMax * 2, L: 30, D: 0}, nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // round 2 hits the pooled states
		for D := 0; D <= ix.Space.M(); D++ {
			dense, err := sw.RunD(D, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := refRunD(refBase, D, 1)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("round%d/D=%d", round, D)
			if len(dense.States) != len(ref.States) {
				t.Fatalf("%s: %d states dense vs %d reference", label, len(dense.States), len(ref.States))
			}
			for j := range dense.States {
				a, b := &dense.States[j], &ref.States[j]
				if a.Size != b.Size || a.Count != b.Count ||
					math.Float64bits(a.Sum) != math.Float64bits(b.Sum) {
					t.Fatalf("%s state %d: %+v dense vs %+v reference", label, j, a, b)
				}
				for x := range a.Clusters {
					if a.Clusters[x] != b.Clusters[x] {
						t.Fatalf("%s state %d cluster %d: %d dense vs %d reference",
							label, j, x, a.Clusters[x], b.Clusters[x])
					}
				}
			}
		}
	}
}

// TestPackedIndexMatchesSliceIndex pins packed == slice end to end on every
// algorithm: the same space built on the packed uint64 fast path and with the
// forced slice fallback must drive the dense engine to bit-identical
// solutions and sweep traces (the packed representation changes the key and
// the Covers/Distance/LCA machinery, never a decision).
func TestPackedIndexMatchesSliceIndex(t *testing.T) {
	ixPacked := randomIndex(t, 970, 140, 5, 3, 30)
	if !ixPacked.PackedKeys() {
		t.Fatal("packed fast path should engage on the synthetic space")
	}
	ixSlice, err := lattice.BuildIndex(ixPacked.Space, ixPacked.L, lattice.WithSliceKeys())
	if err != nil {
		t.Fatal(err)
	}
	if ixSlice.PackedKeys() {
		t.Fatal("WithSliceKeys should force the fallback")
	}
	params := []Params{
		{K: 4, L: 30, D: 2},
		{K: 8, L: 15, D: 3},
		{K: 25, L: 30, D: 1},
	}
	for _, p := range params {
		for _, useDelta := range []bool{true, false} {
			for _, algo := range equivalenceAlgos {
				label := fmt.Sprintf("packed-vs-slice/%s/%+v/delta=%v", algo, p, useDelta)
				a, err := Run(algo, ixPacked, p, WithDelta(useDelta), WithRand(rand.New(rand.NewSource(7))))
				if err != nil {
					t.Fatalf("%s: packed: %v", label, err)
				}
				b, err := Run(algo, ixSlice, p, WithDelta(useDelta), WithRand(rand.New(rand.NewSource(7))))
				if err != nil {
					t.Fatalf("%s: slice: %v", label, err)
				}
				assertBitIdentical(t, label, a, b)
			}
		}
	}
	swP, err := NewSweeper(ixPacked, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	swS, err := NewSweeper(ixSlice, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	for D := 0; D <= ixPacked.Space.M(); D++ {
		a, err := swP.RunD(D, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := swS.RunD(D, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.States) != len(b.States) {
			t.Fatalf("D=%d: %d states packed vs %d slice", D, len(a.States), len(b.States))
		}
		for j := range a.States {
			x, y := &a.States[j], &b.States[j]
			if x.Size != y.Size || x.Count != y.Count ||
				math.Float64bits(x.Sum) != math.Float64bits(y.Sum) {
				t.Fatalf("D=%d state %d: %+v packed vs %+v slice", D, j, x, y)
			}
			for i := range x.Clusters {
				if x.Clusters[i] != y.Clusters[i] {
					t.Fatalf("D=%d state %d cluster %d: %d packed vs %d slice", D, j, i, x.Clusters[i], y.Clusters[i])
				}
			}
		}
	}
}

// movieLensIndex builds a cluster index from a synthetic MovieLens aggregate
// query executed through the SQL front end, like the paper's experiments.
func movieLensIndex(t *testing.T, m, minCount, L int) *lattice.Index {
	t.Helper()
	rel, err := movielens.Generate(movielens.Config{Users: 200, Movies: 300, Ratings: 20_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sql, err := movielens.Query(m, minCount, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteSQL(singleTableCatalog{rel}, sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() < L {
		L = res.N()
	}
	space, err := lattice.NewSpace(res.GroupBy, res.Rows, res.Vals)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := lattice.BuildIndex(space, L)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

type singleTableCatalog struct{ rel *relation.Relation }

func (c singleTableCatalog) Table(string) (*relation.Relation, error) { return c.rel, nil }

// TestDenseEngineMatchesReferenceMovieLens proves equivalence on the
// MovieLens-shaped workload (m=6, L up to 150), for all algorithms and a
// sweep replay.
func TestDenseEngineMatchesReferenceMovieLens(t *testing.T) {
	ix := movieLensIndex(t, 6, 5, 150)
	L := ix.L
	checkEquivalenceGrid(t, "movielens", ix, []Params{
		{K: 10, L: L, D: 2},
		{K: 5, L: L / 2, D: 3},
	})
	sw, err := NewSweeper(ix, L, 12)
	if err != nil {
		t.Fatal(err)
	}
	refBase := newRefWorkset(ix, true)
	if err := refFixedOrderPhase(refBase, Params{K: 24, L: L, D: 0}, nil); err != nil {
		t.Fatal(err)
	}
	for _, D := range []int{1, 2, 4} {
		dense, err := sw.RunD(D, 1)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := refRunD(refBase, D, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(dense.States) != len(ref.States) {
			t.Fatalf("D=%d: %d states dense vs %d reference", D, len(dense.States), len(ref.States))
		}
		for j := range dense.States {
			a, b := &dense.States[j], &ref.States[j]
			if a.Size != b.Size || a.Count != b.Count ||
				math.Float64bits(a.Sum) != math.Float64bits(b.Sum) {
				t.Fatalf("D=%d state %d: %+v dense vs %+v reference", D, j, a, b)
			}
			for x := range a.Clusters {
				if a.Clusters[x] != b.Clusters[x] {
					t.Fatalf("D=%d state %d cluster %d differs", D, j, x)
				}
			}
		}
	}
}
