package summarize

import (
	"qagview/internal/lattice"
)

// fixedOrderProcess runs one step of Algorithm 3 for candidate cluster cand
// (a singleton for the plain algorithm; possibly a starred seed pattern for
// the variants): skip if already subsumed, add if room and diverse enough,
// otherwise merge into the best existing cluster.
func fixedOrderProcess(ws *workset, p Params, cand *lattice.Cluster) error {
	// Subsumption: if an existing cluster covers cand, everything cand
	// covers is already covered and adding it would break the antichain.
	for _, id := range ws.ids {
		if ws.ix.Covers(id, cand.ID) {
			return nil
		}
	}
	if ws.size() < p.K {
		minDist := int(^uint(0) >> 1)
		for _, id := range ws.ids {
			if d := ws.ix.Distance(cand.ID, id); d < minDist {
				minDist = d
			}
		}
		if ws.size() == 0 || minDist >= p.D {
			ws.add(cand)
			return nil
		}
		// Merge with the best partner among clusters violating the distance.
		return mergeBestPartner(ws, cand, func(d int) bool { return d < p.D })
	}
	// Solution is full: merge with the best partner among all clusters.
	return mergeBestPartner(ws, cand, nil)
}

// mergeBestPartner merges cand into the existing cluster whose LCA with cand
// maximizes the tentative solution average, among partners whose distance to
// cand passes the filter.
func mergeBestPartner(ws *workset, cand *lattice.Cluster, filter func(dist int) bool) error {
	var best *lattice.Cluster
	bestVal := 0.0
	for _, id := range ws.ids {
		c := ws.ix.Cluster(id)
		if filter != nil && !filter(ws.ix.Distance(cand.ID, id)) {
			continue
		}
		lcaID, err := ws.lca.LCAID(c.ID, cand.ID)
		if err != nil {
			return err
		}
		lca := ws.ix.Cluster(lcaID)
		v := ws.evalAdd(lca)
		if best == nil || v > bestVal {
			best = lca
			bestVal = v
		}
	}
	if best == nil {
		// No partner passed the filter; this cannot happen for the distance
		// filter because it is only consulted when a violating pair exists.
		panic("summarize: no merge partner")
	}
	ws.add(best)
	return nil
}

// fixedOrderPhase processes optional seed clusters first, then the top-L
// elements in descending value order (Algorithm 3).
func fixedOrderPhase(ws *workset, p Params, seeds []*lattice.Cluster) error {
	for _, s := range seeds {
		if err := fixedOrderProcess(ws, p, s); err != nil {
			return err
		}
	}
	for rank := 0; rank < p.L; rank++ {
		if ws.covered.has(int32(rank)) {
			continue
		}
		if err := fixedOrderProcess(ws, p, ws.ix.Singleton(rank)); err != nil {
			return err
		}
	}
	return nil
}

// FixedOrder is Algorithm 3: build the solution incrementally, considering
// the top-L elements once each in descending value order. It is faster than
// Bottom-Up (it considers at most k candidate merges per element instead of
// a quadratic pair set) but explores a smaller solution space.
func FixedOrder(ix *lattice.Index, p Params, opts ...Option) (*Solution, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := newWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	if err := fixedOrderPhase(ws, p, nil); err != nil {
		return nil, err
	}
	return finish(ws, &cfg), nil
}

// Hybrid is the Section 5.3 algorithm: a Fixed-Order phase targeting c*k
// clusters (c = the hybrid factor, default 2) followed by the Bottom-Up
// merging phases that reduce the candidate pool to k. It approaches
// Bottom-Up quality at closer to Fixed-Order cost, and its Bottom-Up phase
// supports the incremental precomputation of Section 6.
func Hybrid(ix *lattice.Index, p Params, opts ...Option) (*Solution, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	if cfg.hybridC < 1 {
		cfg.hybridC = 1
	}
	ws := newWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	pool := p
	pool.K = cfg.hybridC * p.K
	if err := fixedOrderPhase(ws, pool, nil); err != nil {
		return nil, err
	}
	if err := bottomUpPhases(ws, p, ws.evalAdd); err != nil {
		return nil, err
	}
	return finish(ws, &cfg), nil
}
