//go:build !qagcheck

package summarize

// Without -tags qagcheck the assertions compile to nothing.
func assertSolutionInvariants(sol *Solution) {}
