//go:build qagcheck

package summarize

import "fmt"

// Built with -tags qagcheck, every assembled Solution is verified to be an
// antichain — no output cluster's pattern covers another's — with its
// covered-tuple list strictly ascending. These are the structural halves of
// Definition 4.1 that every algorithm maintains by construction; a violation
// is a bug in the greedy/incremental machinery, so it panics rather than
// returning an error.
func assertSolutionInvariants(sol *Solution) {
	if sol == nil {
		return
	}
	for i, a := range sol.Clusters {
		for j, b := range sol.Clusters {
			if i != j && a.Pat.Covers(b.Pat) {
				panic(fmt.Sprintf("qagcheck: solution is not an antichain: cluster %v covers cluster %v", a.Pat, b.Pat))
			}
		}
	}
	for i := 1; i < len(sol.Covered); i++ {
		if sol.Covered[i-1] >= sol.Covered[i] {
			panic(fmt.Sprintf("qagcheck: solution covered list not strictly ascending at offset %d (%d then %d)", i, sol.Covered[i-1], sol.Covered[i]))
		}
	}
}
