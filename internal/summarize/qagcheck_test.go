//go:build qagcheck

package summarize

import (
	"strings"
	"testing"

	"qagview/internal/lattice"
	"qagview/internal/pattern"
)

// Only meaningful under -tags qagcheck: a comparable pair in the output must
// trip the antichain assertion.
func TestQagcheckCatchesComparableClusters(t *testing.T) {
	parent := &lattice.Cluster{Pat: pattern.Pattern{pattern.Star, 1}}
	child := &lattice.Cluster{Pat: pattern.Pattern{0, 1}}
	sol := &Solution{Clusters: []*lattice.Cluster{parent, child}}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("assertSolutionInvariants accepted a comparable pair")
		}
		if !strings.Contains(r.(string), "antichain") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	assertSolutionInvariants(sol)
}

func TestQagcheckCatchesUnsortedCovered(t *testing.T) {
	sol := &Solution{Covered: []int32{3, 1}}
	defer func() {
		if recover() == nil {
			t.Fatal("assertSolutionInvariants accepted an unsorted covered list")
		}
	}()
	assertSolutionInvariants(sol)
}
