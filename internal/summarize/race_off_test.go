//go:build !race

package summarize

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
