//go:build race

package summarize

// raceEnabled reports whether the race detector is active: sync.Pool
// deliberately drops Put items at random under -race, so tests must not
// assert exact pool-reuse counts there.
const raceEnabled = true
