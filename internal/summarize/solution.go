// Package summarize implements the paper's primary contribution: the
// Max-Avg cluster summarization of top aggregate query answers
// (Definition 4.1) and the Bottom-Up, Fixed-Order, and Hybrid greedy
// algorithms of Section 5, with the Delta-Judgment optimization of
// Section 6.3, an exact branch-and-bound solver for small instances, and the
// algorithm variants evaluated in Section 7.1.
package summarize

import (
	"fmt"
	"math/rand"
	"sort"

	"qagview/internal/lattice"
	"qagview/internal/pattern"
)

// Params are the three user parameters of the framework.
type Params struct {
	// K is the maximum number of clusters to output (size constraint).
	K int
	// L is the coverage constraint: the top-L answers must be covered.
	L int
	// D is the diversity constraint: pairwise cluster distance must be >= D.
	D int
}

// Validate checks the parameters against an index.
func (p Params) Validate(ix *lattice.Index) error {
	if p.K < 1 {
		return fmt.Errorf("summarize: k = %d, want >= 1", p.K)
	}
	if p.L < 1 || p.L > ix.L {
		return fmt.Errorf("summarize: L = %d out of range [1, %d] for this index", p.L, ix.L)
	}
	if p.D < 0 || p.D > ix.Space.M() {
		return fmt.Errorf("summarize: D = %d out of range [0, %d]", p.D, ix.Space.M())
	}
	return nil
}

// Solution is a feasible set of clusters with its objective value.
type Solution struct {
	// Clusters is the output antichain, sorted by descending cluster average.
	Clusters []*lattice.Cluster
	// Covered lists the tuple indices covered by the union, ascending.
	Covered []int32
	// Sum is the total value of covered tuples.
	Sum float64
}

// AvgValue is the Max-Avg objective: the average value of all tuples covered
// by the solution, each counted once.
func (s *Solution) AvgValue() float64 {
	if len(s.Covered) == 0 {
		return 0
	}
	return s.Sum / float64(len(s.Covered))
}

// Size returns the number of clusters.
func (s *Solution) Size() int { return len(s.Clusters) }

// newSolution assembles a Solution from clusters, computing the covered
// union against the index's space.
func newSolution(ix *lattice.Index, clusters []*lattice.Cluster) *Solution {
	sol := &Solution{Clusters: append([]*lattice.Cluster(nil), clusters...)}
	seen := newBitset(ix.Space.N())
	for _, c := range sol.Clusters {
		for _, t := range c.Cov {
			if !seen.has(t) {
				seen.set(t)
				sol.Covered = append(sol.Covered, t)
				sol.Sum += ix.Space.Vals[t]
			}
		}
	}
	sort.Slice(sol.Covered, func(a, b int) bool { return sol.Covered[a] < sol.Covered[b] })
	sort.SliceStable(sol.Clusters, func(a, b int) bool {
		return sol.Clusters[a].Avg() > sol.Clusters[b].Avg()
	})
	assertSolutionInvariants(sol)
	return sol
}

// Validate checks every feasibility condition of Definition 4.1 against the
// solution: size, top-L coverage, pairwise distance, and incomparability.
// It is used pervasively in tests and is part of the public contract.
func Validate(ix *lattice.Index, p Params, sol *Solution) error {
	if err := p.Validate(ix); err != nil {
		return err
	}
	if len(sol.Clusters) == 0 {
		return fmt.Errorf("summarize: empty solution")
	}
	if len(sol.Clusters) > p.K {
		return fmt.Errorf("summarize: %d clusters exceed k = %d", len(sol.Clusters), p.K)
	}
	covered := newBitset(ix.Space.N())
	for _, t := range sol.Covered {
		covered.set(t)
	}
	// Covered must equal the union of cluster coverage.
	union := newBitset(ix.Space.N())
	var sum float64
	n := 0
	for _, c := range sol.Clusters {
		for _, t := range c.Cov {
			if !union.has(t) {
				union.set(t)
				sum += ix.Space.Vals[t]
				n++
			}
		}
	}
	if n != len(sol.Covered) {
		return fmt.Errorf("summarize: Covered has %d tuples but cluster union has %d", len(sol.Covered), n)
	}
	if diff := sum - sol.Sum; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("summarize: Sum = %v but cluster union sums to %v", sol.Sum, sum)
	}
	for rank := 0; rank < p.L; rank++ {
		if !covered.has(int32(rank)) {
			return fmt.Errorf("summarize: top-%d tuple at rank %d is not covered", p.L, rank+1)
		}
	}
	for i, a := range sol.Clusters {
		for _, b := range sol.Clusters[i+1:] {
			if d := pattern.Distance(a.Pat, b.Pat); d < p.D {
				return fmt.Errorf("summarize: clusters %v and %v at distance %d < D = %d",
					ix.Space.FormatPattern(a.Pat), ix.Space.FormatPattern(b.Pat), d, p.D)
			}
			if pattern.Comparable(a.Pat, b.Pat) {
				return fmt.Errorf("summarize: clusters %v and %v are comparable",
					ix.Space.FormatPattern(a.Pat), ix.Space.FormatPattern(b.Pat))
			}
		}
	}
	return nil
}

// Stats reports evaluation-work counters from one algorithm run, for the
// Delta-Judgment ablation (Figure 8b) and the dense-engine memoization:
// FullEvals counts candidate evaluations that scanned the candidate's full
// coverage list; DeltaEvals counts evaluations answered from the
// Delta-Judgment cache; LCAMemoHits/LCAMemoMisses count LCA-pair lookups
// answered from the run's id-indexed memo vs computed against the lattice.
type Stats struct {
	FullEvals     int
	DeltaEvals    int
	LCAMemoHits   int
	LCAMemoMisses int
}

// Objective selects the optimization target of the greedy algorithms.
type Objective int

const (
	// MaxAvg maximizes the average value of covered tuples (the paper's
	// primary objective, Definition 4.1).
	MaxAvg Objective = iota
	// MinSize minimizes the number of redundant covered elements (the
	// alternative objective of the paper's footnote 5; it tends to miss
	// global properties but produces tighter clusters).
	MinSize
)

// config collects algorithm options.
type config struct {
	delta   bool
	hybridC int
	rng     *rand.Rand
	stats   *Stats
	obj     Objective
}

func defaultConfig() config {
	return config{delta: true, hybridC: 2}
}

// Option customizes algorithm behaviour.
type Option func(*config)

// WithDelta enables or disables the Delta-Judgment optimization (Section
// 6.3). It is on by default. In exact arithmetic it never changes results;
// in floating point, cached marginals can differ from freshly scanned ones
// in the last ulps, which may flip the greedy choice between merges of
// (essentially) equal value.
func WithDelta(on bool) Option { return func(c *config) { c.delta = on } }

// WithHybridFactor sets the Hybrid algorithm's candidate-pool factor c > 1:
// the Fixed-Order phase targets c*k clusters before the Bottom-Up phase
// reduces them to k. The default is 2.
func WithHybridFactor(c int) Option {
	return func(cfg *config) { cfg.hybridC = c }
}

// WithRand supplies the random source for the randomized variants
// (random-Fixed-Order and k-means-Fixed-Order).
func WithRand(rng *rand.Rand) Option { return func(c *config) { c.rng = rng } }

// WithStats has the algorithm write its evaluation-work counters into s.
func WithStats(s *Stats) Option { return func(c *config) { c.stats = s } }

// WithObjective selects the greedy optimization target (default MaxAvg).
func WithObjective(o Objective) Option { return func(c *config) { c.obj = o } }

// finish snapshots the workset into a Solution and reports stats if asked.
func finish(ws *workset, cfg *config) *Solution {
	if cfg.stats != nil {
		cfg.stats.FullEvals += ws.evalFull
		cfg.stats.DeltaEvals += ws.evalDelta
		cfg.stats.LCAMemoHits += ws.lca.Hits()
		cfg.stats.LCAMemoMisses += ws.lca.Misses()
	}
	return ws.solution()
}

// LowerBound returns the paper's trivial baseline: the single all-star
// cluster, feasible for every parameter setting.
func LowerBound(ix *lattice.Index) *Solution {
	return newSolution(ix, []*lattice.Cluster{ix.AllStar()})
}
