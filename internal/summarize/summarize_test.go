package summarize

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qagview/internal/lattice"
	"qagview/internal/pattern"
)

// buildSpace constructs a space from rows/vals with generated attr names.
func buildSpace(t testing.TB, m int, rows [][]string, vals []float64) *lattice.Space {
	t.Helper()
	attrs := make([]string, m)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i)
	}
	s, err := lattice.NewSpace(attrs, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomIndex builds an index over a random categorical space with planted
// high-value structure (a couple of attribute values correlate with high
// values) so summaries are non-trivial.
func randomIndex(t testing.TB, seed int64, n, m, dom, L int) *lattice.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if pow(dom, m) < n {
		t.Fatalf("domain too small for %d unique rows", n)
	}
	rows := make([][]string, 0, n)
	vals := make([]float64, 0, n)
	seen := map[string]bool{}
	for len(rows) < n {
		row := make([]string, m)
		key := ""
		boost := 0.0
		for j := range row {
			v := rng.Intn(dom)
			row[j] = fmt.Sprintf("v%d_%d", j, v)
			key += row[j] + "|"
			if v == 0 && j < 2 {
				boost += 1.0
			}
		}
		if seen[key] {
			continue // group-by output rows are unique
		}
		seen[key] = true
		rows = append(rows, row)
		vals = append(vals, rng.Float64()*2+boost)
	}
	s := buildSpace(t, m, rows, vals)
	ix, err := lattice.BuildIndex(s, L)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestParamsValidate(t *testing.T) {
	ix := randomIndex(t, 1, 30, 4, 3, 10)
	bad := []Params{
		{K: 0, L: 5, D: 1},
		{K: 3, L: 0, D: 1},
		{K: 3, L: 11, D: 1}, // beyond index L
		{K: 3, L: 5, D: -1},
		{K: 3, L: 5, D: 5}, // > m
	}
	for _, p := range bad {
		if err := p.Validate(ix); err == nil {
			t.Errorf("Params %+v: want error", p)
		}
	}
	if err := (Params{K: 3, L: 5, D: 2}).Validate(ix); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

// TestAllAlgorithmsFeasible is the central invariant test: every algorithm
// returns a solution satisfying all four conditions of Definition 4.1, over
// a grid of parameter settings and random spaces.
func TestAllAlgorithmsFeasible(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ix := randomIndex(t, 100+seed, 80, 4, 3, 20)
		for _, k := range []int{1, 3, 8, 25} {
			for _, L := range []int{1, 5, 20} {
				for _, D := range []int{0, 1, 2, 4} {
					p := Params{K: k, L: L, D: D}
					for _, algo := range Algorithms() {
						if algo == AlgoBruteForce && (L > 5 || k > 3) {
							continue // exponential; tested separately
						}
						sol, err := Run(algo, ix, p, WithRand(rand.New(rand.NewSource(7))))
						if err != nil {
							t.Fatalf("seed=%d %s %+v: %v", seed, algo, p, err)
						}
						if err := Validate(ix, p, sol); err != nil {
							t.Errorf("seed=%d %s %+v: infeasible: %v", seed, algo, p, err)
						}
					}
				}
			}
		}
	}
}

func TestBottomUpTopKWhenUnconstrained(t *testing.T) {
	// With D = 0 and k >= L, Bottom-Up keeps the L singletons: the top-L
	// original elements (Section 4.3 case 1).
	ix := randomIndex(t, 2, 50, 4, 3, 8)
	p := Params{K: 10, L: 8, D: 0}
	sol, err := BottomUp(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Size() != 8 {
		t.Fatalf("size = %d, want 8", sol.Size())
	}
	for _, c := range sol.Clusters {
		if c.Pat.Level() != 0 {
			t.Errorf("cluster %v is not a singleton", c.Pat)
		}
	}
	// Objective equals the average of the top-8 values.
	want := 0.0
	for i := 0; i < 8; i++ {
		want += ix.Space.Vals[i]
	}
	want /= 8
	if math.Abs(sol.AvgValue()-want) > 1e-9 {
		t.Errorf("avg = %v, want %v", sol.AvgValue(), want)
	}
}

func TestLowerBoundIsTrivialAndWorst(t *testing.T) {
	ix := randomIndex(t, 3, 60, 4, 3, 10)
	lb := LowerBound(ix)
	if lb.Size() != 1 || lb.Clusters[0].Pat.Level() != ix.Space.M() {
		t.Fatalf("lower bound is not the all-star cluster: %v", lb.Clusters)
	}
	if len(lb.Covered) != ix.Space.N() {
		t.Errorf("lower bound covers %d of %d", len(lb.Covered), ix.Space.N())
	}
	p := Params{K: 5, L: 10, D: 2}
	for _, algo := range []Algorithm{AlgoBottomUp, AlgoFixedOrder, AlgoHybrid} {
		sol, err := Run(algo, ix, p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.AvgValue() < lb.AvgValue()-1e-9 {
			t.Errorf("%s value %v below trivial lower bound %v", algo, sol.AvgValue(), lb.AvgValue())
		}
	}
}

func TestBruteForceDominatesHeuristics(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		ix := randomIndex(t, 200+seed, 40, 4, 3, 5)
		for _, p := range []Params{{K: 2, L: 5, D: 2}, {K: 3, L: 5, D: 3}, {K: 3, L: 4, D: 1}} {
			opt, err := BruteForce(ix, p)
			if err != nil {
				t.Fatalf("BruteForce %+v: %v", p, err)
			}
			if err := Validate(ix, p, opt); err != nil {
				t.Fatalf("BruteForce %+v infeasible: %v", p, err)
			}
			for _, algo := range []Algorithm{AlgoBottomUp, AlgoFixedOrder, AlgoHybrid} {
				sol, err := Run(algo, ix, p)
				if err != nil {
					t.Fatal(err)
				}
				if sol.AvgValue() > opt.AvgValue()+1e-9 {
					t.Errorf("seed=%d %s %+v: heuristic %v beats exact %v", seed, algo, p, sol.AvgValue(), opt.AvgValue())
				}
			}
		}
	}
}

func TestBruteForceBudget(t *testing.T) {
	ix := randomIndex(t, 4, 40, 4, 3, 5)
	if _, err := BruteForceBudget(ix, Params{K: 3, L: 5, D: 1}, 1); err != ErrBudgetExceeded {
		t.Errorf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestDeltaJudgmentIsPureOptimization(t *testing.T) {
	// Delta-Judgment must not change any algorithm's output.
	for seed := int64(0); seed < 3; seed++ {
		ix := randomIndex(t, 300+seed, 120, 5, 3, 30)
		for _, p := range []Params{{K: 4, L: 30, D: 2}, {K: 8, L: 15, D: 3}, {K: 2, L: 10, D: 0}} {
			for _, algo := range []Algorithm{AlgoBottomUp, AlgoFixedOrder, AlgoHybrid} {
				on, err := Run(algo, ix, p, WithDelta(true))
				if err != nil {
					t.Fatal(err)
				}
				off, err := Run(algo, ix, p, WithDelta(false))
				if err != nil {
					t.Fatal(err)
				}
				if !sameSolution(on, off) {
					t.Errorf("seed=%d %s %+v: delta on/off diverge:\n on: %v\noff: %v",
						seed, algo, p, patterns(ix, on), patterns(ix, off))
				}
			}
		}
	}
}

func TestDeltaJudgmentReducesFullScans(t *testing.T) {
	ix := randomIndex(t, 5, 300, 5, 4, 60)
	p := Params{K: 5, L: 60, D: 2}
	var with, without Stats
	if _, err := Hybrid(ix, p, WithDelta(true), WithStats(&with)); err != nil {
		t.Fatal(err)
	}
	if _, err := Hybrid(ix, p, WithDelta(false), WithStats(&without)); err != nil {
		t.Fatal(err)
	}
	if with.DeltaEvals == 0 {
		t.Error("delta cache never used")
	}
	if with.FullEvals >= without.FullEvals {
		t.Errorf("delta did not reduce full scans: %d vs %d", with.FullEvals, without.FullEvals)
	}
}

func sameSolution(a, b *Solution) bool {
	if a.Size() != b.Size() || len(a.Covered) != len(b.Covered) {
		return false
	}
	ids := map[int32]bool{}
	for _, c := range a.Clusters {
		ids[c.ID] = true
	}
	for _, c := range b.Clusters {
		if !ids[c.ID] {
			return false
		}
	}
	return true
}

func patterns(ix *lattice.Index, s *Solution) []string {
	out := make([]string, s.Size())
	for i, c := range s.Clusters {
		out[i] = ix.Space.FormatPattern(c.Pat)
	}
	return out
}

func TestHybridFactorOne(t *testing.T) {
	ix := randomIndex(t, 6, 60, 4, 3, 15)
	p := Params{K: 4, L: 15, D: 2}
	sol, err := Hybrid(ix, p, WithHybridFactor(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ix, p, sol); err != nil {
		t.Error(err)
	}
	// Factor < 1 is clamped to 1.
	sol2, err := Hybrid(ix, p, WithHybridFactor(0))
	if err != nil {
		t.Fatal(err)
	}
	if !sameSolution(sol, sol2) {
		t.Error("factor 0 should clamp to 1")
	}
}

func TestRandomVariantsRequireRand(t *testing.T) {
	ix := randomIndex(t, 7, 40, 4, 3, 10)
	p := Params{K: 3, L: 10, D: 1}
	if _, err := RandomFixedOrder(ix, p); err == nil {
		t.Error("RandomFixedOrder without WithRand: want error")
	}
	if _, err := KMeansFixedOrder(ix, p); err == nil {
		t.Error("KMeansFixedOrder without WithRand: want error")
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	ix := randomIndex(t, 8, 30, 4, 3, 5)
	if _, err := Run("nope", ix, Params{K: 2, L: 5, D: 1}); err == nil {
		t.Error("unknown algorithm: want error")
	}
}

func TestValidateRejectsBadSolutions(t *testing.T) {
	ix := randomIndex(t, 9, 60, 4, 3, 10)
	p := Params{K: 3, L: 10, D: 2}
	good, err := Hybrid(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ix, p, good); err != nil {
		t.Fatalf("good solution rejected: %v", err)
	}

	if err := Validate(ix, p, &Solution{}); err == nil {
		t.Error("empty solution accepted")
	}
	// Too many clusters.
	tooMany := *good
	if err := Validate(ix, Params{K: good.Size() - 1, L: p.L, D: p.D}, &tooMany); err == nil && good.Size() > 1 {
		t.Error("oversized solution accepted")
	}
	// Coverage violation: a solution of one singleton far down the ranking.
	single := &Solution{Clusters: []*lattice.Cluster{ix.Singleton(p.L - 1)}}
	single.Covered = append([]int32(nil), ix.Singleton(p.L-1).Cov...)
	single.Sum = ix.Singleton(p.L - 1).Sum
	if err := Validate(ix, p, single); err == nil {
		t.Error("non-covering solution accepted")
	}
	// Comparable clusters (all-star covers everything).
	comp := &Solution{Clusters: []*lattice.Cluster{ix.AllStar(), ix.Singleton(0)}}
	comp.Covered = append([]int32(nil), ix.AllStar().Cov...)
	comp.Sum = ix.AllStar().Sum
	if err := Validate(ix, Params{K: 2, L: 1, D: 0}, comp); err == nil {
		t.Error("comparable clusters accepted")
	}
	// Corrupted covered bookkeeping.
	corrupt := &Solution{Clusters: good.Clusters, Covered: good.Covered[:1], Sum: good.Sum}
	if err := Validate(ix, p, corrupt); err == nil {
		t.Error("corrupted Covered accepted")
	}
}

func TestMinPairwiseDistanceNeverDecreases(t *testing.T) {
	// Monotonicity in action: the final solution's pairwise minimum distance
	// must satisfy D for every algorithm, even after many merges.
	ix := randomIndex(t, 10, 150, 5, 3, 40)
	for _, D := range []int{1, 2, 3, 5} {
		p := Params{K: 6, L: 40, D: D}
		for _, algo := range []Algorithm{AlgoBottomUp, AlgoFixedOrder, AlgoHybrid, AlgoBottomUpLevelStart} {
			sol, err := Run(algo, ix, p)
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range sol.Clusters {
				for _, b := range sol.Clusters[i+1:] {
					if d := pattern.Distance(a.Pat, b.Pat); d < D {
						t.Errorf("%s D=%d: pair at distance %d", algo, D, d)
					}
				}
			}
		}
	}
}

func TestSweepContinuityProposition61(t *testing.T) {
	// Once a cluster leaves the solution during the Bottom-Up phase it never
	// returns, so each cluster's k-range is one interval.
	ix := randomIndex(t, 11, 200, 5, 3, 50)
	sw, err := NewSweeper(ix, 50, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, D := range []int{1, 2, 3} {
		ss, err := sw.RunD(D, 1)
		if err != nil {
			t.Fatal(err)
		}
		present := map[int32][]int{} // cluster -> state indices where present
		for si, st := range ss.States {
			if si > 0 && st.Size >= ss.States[si-1].Size {
				t.Fatalf("D=%d: sizes not strictly decreasing at state %d", D, si)
			}
			for _, id := range st.Clusters {
				present[id] = append(present[id], si)
			}
		}
		for id, sis := range present {
			for j := 1; j < len(sis); j++ {
				if sis[j] != sis[j-1]+1 {
					t.Fatalf("D=%d: cluster %d present in non-contiguous states %v (continuity violated)", D, id, sis)
				}
			}
		}
	}
}

func TestSweepMatchesDirectHybrid(t *testing.T) {
	// The sweep's recorded state for (k, D) must be a feasible solution for
	// those parameters with the same coverage semantics.
	ix := randomIndex(t, 12, 150, 4, 4, 30)
	kMax := 10
	sw, err := NewSweeper(ix, 30, kMax)
	if err != nil {
		t.Fatal(err)
	}
	for _, D := range []int{1, 2} {
		ss, err := sw.RunD(D, 1)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= kMax; k++ {
			st, ok := ss.SolutionFor(k)
			if !ok {
				t.Fatalf("no solution for k=%d D=%d", k, D)
			}
			clusters := make([]*lattice.Cluster, len(st.Clusters))
			for i, id := range st.Clusters {
				clusters[i] = ix.Cluster(id)
			}
			sol := &Solution{Clusters: clusters}
			seen := map[int32]bool{}
			for _, c := range clusters {
				for _, t := range c.Cov {
					if !seen[t] {
						seen[t] = true
						sol.Covered = append(sol.Covered, t)
						sol.Sum += ix.Space.Vals[t]
					}
				}
			}
			if err := Validate(ix, Params{K: k, L: 30, D: D}, sol); err != nil {
				t.Errorf("sweep state k=%d D=%d infeasible: %v", k, D, err)
			}
			if math.Abs(st.Avg()-sol.Sum/float64(len(sol.Covered))) > 1e-9 {
				t.Errorf("sweep avg mismatch at k=%d D=%d", k, D)
			}
		}
	}
}

func TestSweeperValidation(t *testing.T) {
	ix := randomIndex(t, 13, 40, 4, 3, 10)
	if _, err := NewSweeper(ix, 0, 5); err == nil {
		t.Error("L=0: want error")
	}
	sw, err := NewSweeper(ix, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sw.PoolSize() < 1 {
		t.Error("empty pool")
	}
	if _, err := sw.RunD(-1, 1); err == nil {
		t.Error("D=-1: want error")
	}
	if _, err := sw.RunD(99, 1); err == nil {
		t.Error("D>m: want error")
	}
	if _, err := sw.RunD(2, 0); err == nil {
		t.Error("kMin=0: want error")
	}
}

func TestSolutionAvgValueEmpty(t *testing.T) {
	var s Solution
	if s.AvgValue() != 0 {
		t.Error("empty AvgValue != 0")
	}
}

func TestRandomizedVariantsFeasibleManySeeds(t *testing.T) {
	ix := randomIndex(t, 14, 80, 4, 3, 20)
	p := Params{K: 5, L: 20, D: 2}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r, err := RandomFixedOrder(ix, p, WithRand(rng))
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(ix, p, r); err != nil {
			t.Errorf("random seed=%d infeasible: %v", seed, err)
		}
		km, err := KMeansFixedOrder(ix, p, WithRand(rng))
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(ix, p, km); err != nil {
			t.Errorf("kmeans seed=%d infeasible: %v", seed, err)
		}
	}
}

func TestBottomUpBeatsOrMatchesFixedOrderUsually(t *testing.T) {
	// The paper reports Bottom-Up generally achieves higher objective values
	// than Fixed-Order. Check the aggregate relationship over several
	// random spaces (allowing individual exceptions).
	wins, losses := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		ix := randomIndex(t, 400+seed, 100, 4, 4, 25)
		p := Params{K: 5, L: 25, D: 2}
		bu, err := BottomUp(ix, p)
		if err != nil {
			t.Fatal(err)
		}
		fo, err := FixedOrder(ix, p)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case bu.AvgValue() > fo.AvgValue()+1e-12:
			wins++
		case fo.AvgValue() > bu.AvgValue()+1e-12:
			losses++
		}
	}
	if losses > wins {
		t.Errorf("Bottom-Up lost to Fixed-Order %d-%d across seeds", losses, wins)
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
		if r > 1<<30 {
			return 1 << 30
		}
	}
	return r
}

func TestMinSizeObjectiveCoversFewer(t *testing.T) {
	// Footnote 5: the Min-Size objective minimizes redundant covered
	// elements. Across random spaces it should never cover more elements
	// than Max-Avg at the same parameters, and often strictly fewer.
	fewer, more := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		ix := randomIndex(t, 500+seed, 120, 4, 4, 30)
		p := Params{K: 4, L: 30, D: 2}
		maxAvg, err := Hybrid(ix, p)
		if err != nil {
			t.Fatal(err)
		}
		minSize, err := Hybrid(ix, p, WithObjective(MinSize))
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(ix, p, minSize); err != nil {
			t.Fatalf("seed %d: MinSize solution infeasible: %v", seed, err)
		}
		switch {
		case len(minSize.Covered) < len(maxAvg.Covered):
			fewer++
		case len(minSize.Covered) > len(maxAvg.Covered):
			more++
		}
	}
	if more > fewer {
		t.Errorf("MinSize covered more elements than MaxAvg in %d of 8 seeds (fewer in %d)", more, fewer)
	}
}

func TestMinSizeWithBottomUpAndFixedOrder(t *testing.T) {
	ix := randomIndex(t, 42, 100, 4, 4, 25)
	p := Params{K: 5, L: 25, D: 2}
	for _, algo := range []Algorithm{AlgoBottomUp, AlgoFixedOrder} {
		sol, err := Run(algo, ix, p, WithObjective(MinSize))
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(ix, p, sol); err != nil {
			t.Errorf("%s MinSize infeasible: %v", algo, err)
		}
	}
}

func TestMarginalStaleCacheRecovers(t *testing.T) {
	// Force the Delta-Judgment cache through its three paths: fresh, one
	// round stale (incremental update), and more than one round stale (full
	// rescan). The marginal must match a direct computation each time.
	ix := randomIndex(t, 77, 60, 4, 4, 20)
	ws := newWorkset(ix, true)
	direct := func(c *lattice.Cluster) (float64, int) {
		var sum float64
		var cnt int
		for _, tt := range c.Cov {
			if !ws.covered.has(tt) {
				sum += ix.Space.Vals[tt]
				cnt++
			}
		}
		return sum, cnt
	}
	probe := ix.AllStar()
	check := func(stage string) {
		t.Helper()
		wantSum, wantCnt := direct(probe)
		gotSum, gotCnt := ws.marginal(probe)
		if gotCnt != wantCnt || math.Abs(gotSum-wantSum) > 1e-9 {
			t.Fatalf("%s: marginal = (%v, %d), want (%v, %d)", stage, gotSum, gotCnt, wantSum, wantCnt)
		}
	}
	check("fresh")
	ws.add(ix.Singleton(0))
	check("one round stale")
	ws.add(ix.Singleton(1))
	ws.add(ix.Singleton(2))
	check("two rounds stale (full rescan)")
}

func TestEvalAddMinSizeObjective(t *testing.T) {
	// Under MinSize, evalAdd must score a candidate as the negated tentative
	// coverage count, so a candidate covering fewer new tuples always wins,
	// regardless of values; under MaxAvg it is the tentative average.
	ix := randomIndex(t, 79, 60, 4, 4, 20)
	ws := newWorkset(ix, true)
	ws.obj = MinSize
	ws.add(ix.Singleton(0))
	small := ix.Singleton(1) // covers at least its own tuple
	big := ix.AllStar()      // covers everything
	_, smallCnt := ws.marginal(small)
	_, bigCnt := ws.marginal(big)
	if got, want := ws.evalAdd(small), -float64(ws.cnt+smallCnt); got != want {
		t.Errorf("MinSize evalAdd(small) = %v, want %v", got, want)
	}
	if got, want := ws.evalAdd(big), -float64(ws.cnt+bigCnt); got != want {
		t.Errorf("MinSize evalAdd(big) = %v, want %v", got, want)
	}
	if ws.evalAdd(small) <= ws.evalAdd(big) {
		t.Error("MinSize must prefer the candidate covering fewer elements")
	}
	wsMax := newWorkset(ix, true)
	wsMax.add(ix.Singleton(0))
	dsum, dcnt := wsMax.marginal(big)
	if got, want := wsMax.evalAdd(big), (wsMax.sum+dsum)/float64(wsMax.cnt+dcnt); got != want {
		t.Errorf("MaxAvg evalAdd = %v, want %v", got, want)
	}
}

func TestLevelStartLevelClamps(t *testing.T) {
	// The seed level is D-1 clamped to [0, m]: D=0 would be level -1 and a
	// (hypothetical) D > m+1 would star more attributes than exist.
	cases := []struct{ D, m, want int }{
		{0, 4, 0},  // D-1 < 0 clamps to 0
		{1, 4, 0},  // concrete tuples
		{3, 4, 2},  // interior
		{4, 4, 3},  // largest D public validation admits
		{5, 4, 4},  // level would be m: all-star seeds
		{9, 4, 4},  // D-1 > m clamps to m
		{0, 0, 0},  // degenerate zero-attribute clamp ordering
		{99, 0, 0}, // both clamps at once
	}
	for _, c := range cases {
		if got := levelStartLevel(c.D, c.m); got != c.want {
			t.Errorf("levelStartLevel(%d, %d) = %d, want %d", c.D, c.m, got, c.want)
		}
	}
}

func TestBottomUpLevelStartBoundaries(t *testing.T) {
	// The public boundary settings: D = 0 (seed level clamps to 0, i.e. the
	// plain singletons) and D = m (seeds at level m-1). Both must produce
	// solutions that validate.
	ix := randomIndex(t, 80, 100, 4, 4, 25)
	m := ix.Space.M()
	for _, p := range []Params{
		{K: 5, L: 25, D: 0},
		{K: 5, L: 25, D: m},
		{K: 1, L: 25, D: m},
	} {
		sol, err := BottomUpLevelStart(ix, p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if err := Validate(ix, p, sol); err != nil {
			t.Errorf("%+v: infeasible: %v", p, err)
		}
	}
	// D = 0 clamps to the singleton start, so it must agree with BottomUp
	// (identical seeds, identical phases).
	p := Params{K: 6, L: 25, D: 0}
	ls, err := BottomUpLevelStart(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := BottomUp(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSolution(ls, bu) {
		t.Error("BottomUpLevelStart at D=0 should match BottomUp (seed level clamps to singletons)")
	}
}

func TestBruteForceLTooLarge(t *testing.T) {
	ix := randomIndex(t, 78, 80, 4, 4, 70)
	if _, err := BruteForce(ix, Params{K: 70, L: 70, D: 0}); err == nil {
		t.Error("L > 64 accepted by brute force")
	}
}
