package summarize

import (
	"fmt"
	"sort"

	"qagview/internal/lattice"
)

// Sweeper supports the incremental computation of Section 6.2: the Hybrid
// algorithm's Fixed-Order phase runs once per L (with a candidate pool sized
// for the largest k of interest and no distance constraint), and its output
// is reused as the starting state of the Bottom-Up phase for every (k, D)
// combination.
type Sweeper struct {
	ix   *Index
	cfg  config
	kMax int
	base *workset // state after the shared Fixed-Order phase
}

// Index aliases lattice.Index to keep signatures in this package short.
type Index = lattice.Index

// SweepState is one snapshot of the Bottom-Up phase: the solution in effect
// for every k in [Size, prevSize-1].
type SweepState struct {
	// Clusters holds the cluster ids of the solution.
	Clusters []int32
	// Size is len(Clusters).
	Size int
	// Sum and Count give the objective numerator and denominator.
	Sum   float64
	Count int
}

// Avg returns the objective value of the state.
func (s *SweepState) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// SweepStates is the Bottom-Up trace for one D: states in strictly
// decreasing size order. The solution for a given k is the first state with
// Size <= k.
type SweepStates struct {
	D      int
	States []SweepState
}

// SolutionFor returns the state in effect for k, or false if k is below the
// smallest recorded size.
func (ss *SweepStates) SolutionFor(k int) (*SweepState, bool) {
	// Size is strictly decreasing, so Size <= k is monotone over the trace:
	// binary-search the first state satisfying it.
	i := sort.Search(len(ss.States), func(i int) bool { return ss.States[i].Size <= k })
	if i == len(ss.States) {
		return nil, false
	}
	return &ss.States[i], true
}

// NewSweeper runs the shared Fixed-Order phase for coverage L with a
// candidate pool of c*kMax clusters and no distance constraint, returning a
// sweeper whose RunD replays the Bottom-Up phase per D.
func NewSweeper(ix *Index, L, kMax int, opts ...Option) (*Sweeper, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.hybridC < 1 {
		cfg.hybridC = 1
	}
	p := Params{K: kMax * cfg.hybridC, L: L, D: 0}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := newWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	if err := fixedOrderPhase(ws, p, nil); err != nil {
		return nil, err
	}
	return &Sweeper{ix: ix, cfg: cfg, kMax: kMax, base: ws}, nil
}

// PoolSize returns the number of clusters after the shared phase.
func (sw *Sweeper) PoolSize() int { return sw.base.size() }

// RunD replays the Bottom-Up phase for one distance constraint D from the
// shared state: first enforcing pairwise distance, then merging down to
// kMin, recording a state after enforcement and after every merge. The
// returned states obey the continuity property (Proposition 6.1): once a
// cluster disappears it never reappears, so each cluster's ks form one
// interval.
//
// RunD is safe for concurrent use: each call works on its own clone of the
// shared Fixed-Order state and only reads the base workset and the index.
func (sw *Sweeper) RunD(D, kMin int) (*SweepStates, error) {
	if D < 0 || D > sw.ix.Space.M() {
		return nil, fmt.Errorf("summarize: D = %d out of range [0, %d]", D, sw.ix.Space.M())
	}
	if kMin < 1 {
		return nil, fmt.Errorf("summarize: kMin = %d, want >= 1", kMin)
	}
	ws := sw.base.clone()
	ps := newPairSet(ws)
	// Phase 1: enforce distance D.
	for {
		pi, ok := ps.best(func(d int) bool { return d < D }, ws.evalAdd)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return nil, err
		}
	}
	out := &SweepStates{D: D}
	snapshot := func() {
		st := SweepState{Size: ws.size(), Sum: ws.sum, Count: ws.cnt}
		st.Clusters = sortedIDs(ws)
		out.States = append(out.States, st)
	}
	snapshot()
	// Phase 2: merge down to kMin, one state per strictly smaller size.
	for ws.size() > kMin {
		pi, ok := ps.best(nil, ws.evalAdd)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return nil, err
		}
		snapshot()
	}
	return out, nil
}

// clone copies the mutable solution state (clusters, coverage, objective)
// with a fresh Delta-Judgment cache, so per-D replays are independent and
// may run concurrently: the clone shares only the immutable index and the
// *lattice.Cluster values (never mutated after BuildIndex). The cache map,
// its *deltaEntry values (mutated in place by marginal), the lastDelta
// slice, and the coverage bitmap must all be unshared — the cache starts
// empty (which also makes lastDelta/round irrelevant, as no entry can be
// one round stale) and the bitmap is deep-copied.
func (ws *workset) clone() *workset {
	c := newWorkset(ws.ix, ws.delta)
	c.obj = ws.obj
	for id, cl := range ws.clusters {
		c.clusters[id] = cl
	}
	c.covered = ws.covered.clone()
	c.sum = ws.sum
	c.cnt = ws.cnt
	return c
}
