package summarize

import (
	"fmt"
	"sort"
	"sync"

	"qagview/internal/lattice"
)

// Sweeper supports the incremental computation of Section 6.2: the Hybrid
// algorithm's Fixed-Order phase runs once per L (with a candidate pool sized
// for the largest k of interest and no distance constraint), and its output
// is reused as the starting state of the Bottom-Up phase for every (k, D)
// combination.
//
// Replays draw their mutable state from an internal sync.Pool of resettable
// replay states, so a (k, D) precompute grid reuses worksets, coverage
// bitmaps, Delta-Judgment caches, pair buffers, and LCA memos across Ds
// instead of reallocating them per replay.
type Sweeper struct {
	ix   *Index
	cfg  config
	l    int
	kMax int
	base *workset // state after the shared Fixed-Order phase

	pool sync.Pool // of *replayState

	mu    sync.Mutex
	stats ReplayStats
}

// Index aliases lattice.Index to keep signatures in this package short.
type Index = lattice.Index

// replayState is the reusable mutable state of one Bottom-Up replay: a dense
// workset plus the pair buffer of its pair set.
type replayState struct {
	ws *workset
	ps pairSet
}

// ReplayStats aggregates allocation-avoidance and memoization counters over
// a sweeper's replays, for the precompute experiments.
type ReplayStats struct {
	// Replays counts RunD calls that checked out a replay state (errored
	// replays included — their state still returns to the pool).
	Replays int
	// PooledReuses counts replays that reused a pooled state instead of
	// allocating a fresh one (allocations avoided: one full workset — dense
	// membership and cache arrays, two bitmaps, pair buffer, LCA memo — per
	// reuse).
	PooledReuses int
	// LCAMemoHits and LCAMemoMisses count LCA lookups answered from the
	// id-indexed memo vs computed against the lattice.
	LCAMemoHits   int
	LCAMemoMisses int
}

// SweepState is one snapshot of the Bottom-Up phase: the solution in effect
// for every k in [Size, prevSize-1].
type SweepState struct {
	// Clusters holds the cluster ids of the solution.
	Clusters []int32
	// Size is len(Clusters).
	Size int
	// Sum and Count give the objective numerator and denominator.
	Sum   float64
	Count int
}

// Avg returns the objective value of the state.
func (s *SweepState) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// SweepStates is the Bottom-Up trace for one D: states in strictly
// decreasing size order. The solution for a given k is the first state with
// Size <= k.
type SweepStates struct {
	D      int
	States []SweepState
}

// SolutionFor returns the state in effect for k, or false if k is below the
// smallest recorded size.
func (ss *SweepStates) SolutionFor(k int) (*SweepState, bool) {
	// Size is strictly decreasing, so Size <= k is monotone over the trace:
	// binary-search the first state satisfying it.
	i := sort.Search(len(ss.States), func(i int) bool { return ss.States[i].Size <= k })
	if i == len(ss.States) {
		return nil, false
	}
	return &ss.States[i], true
}

// NewSweeper runs the shared Fixed-Order phase for coverage L with a
// candidate pool of c*kMax clusters and no distance constraint, returning a
// sweeper whose RunD replays the Bottom-Up phase per D.
func NewSweeper(ix *Index, L, kMax int, opts ...Option) (*Sweeper, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.hybridC < 1 {
		cfg.hybridC = 1
	}
	p := Params{K: kMax * cfg.hybridC, L: L, D: 0}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := newWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	if err := fixedOrderPhase(ws, p, nil); err != nil {
		return nil, err
	}
	return &Sweeper{ix: ix, cfg: cfg, l: L, kMax: kMax, base: ws}, nil
}

// PoolSize returns the number of clusters after the shared phase.
func (sw *Sweeper) PoolSize() int { return sw.base.size() }

// Index returns the cluster space the sweeper replays over.
func (sw *Sweeper) Index() *Index { return sw.ix }

// L returns the coverage parameter of the shared Fixed-Order phase.
func (sw *Sweeper) L() int { return sw.l }

// KMax returns the largest solution size the sweeper was provisioned for.
func (sw *Sweeper) KMax() int { return sw.kMax }

// Stats returns a snapshot of the sweeper's replay counters. It is safe to
// call concurrently with RunD.
func (sw *Sweeper) Stats() ReplayStats {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.stats
}

// getState fetches a pooled replay state, or allocates one on first use (and
// whenever more replays run concurrently than states have been pooled).
func (sw *Sweeper) getState() (st *replayState, reused bool) {
	if v := sw.pool.Get(); v != nil {
		return v.(*replayState), true
	}
	ws := newWorkset(sw.ix, sw.cfg.delta)
	ws.obj = sw.cfg.obj
	return &replayState{ws: ws}, false
}

// RunD replays the Bottom-Up phase for one distance constraint D from the
// shared state: first enforcing pairwise distance, then merging down to
// kMin, recording a state after enforcement and after every merge. The
// returned states obey the continuity property (Proposition 6.1): once a
// cluster disappears it never reappears, so each cluster's ks form one
// interval.
//
// RunD is safe for concurrent use: each call checks a private replay state
// out of the pool, resets it from the shared Fixed-Order state (which it
// only reads), and returns it to the pool when done.
func (sw *Sweeper) RunD(D, kMin int) (*SweepStates, error) {
	if D < 0 || D > sw.ix.Space.M() {
		return nil, fmt.Errorf("summarize: D = %d out of range [0, %d]", D, sw.ix.Space.M())
	}
	if kMin < 1 {
		return nil, fmt.Errorf("summarize: kMin = %d, want >= 1", kMin)
	}
	st, reused := sw.getState()
	ws := st.ws
	ws.resetFrom(sw.base)
	memoHits0, memoMisses0 := ws.lca.Hits(), ws.lca.Misses()
	// Return the state to the pool and record counters on every exit path,
	// so an errored replay neither leaks its state nor skews the stats.
	defer func() {
		sw.mu.Lock()
		sw.stats.Replays++
		if reused {
			sw.stats.PooledReuses++
		}
		sw.stats.LCAMemoHits += ws.lca.Hits() - memoHits0
		sw.stats.LCAMemoMisses += ws.lca.Misses() - memoMisses0
		sw.mu.Unlock()
		sw.pool.Put(st)
	}()
	st.ps.init(ws)
	ps := &st.ps
	// Phase 1: enforce distance D.
	for {
		pi, ok := ps.best(func(d int) bool { return d < D }, ws.evalAdd)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return nil, err
		}
	}
	out := &SweepStates{D: D}
	snapshot := func() {
		st := SweepState{Size: ws.size(), Sum: ws.sum, Count: ws.cnt}
		st.Clusters = sortedIDs(ws)
		out.States = append(out.States, st)
	}
	snapshot()
	// Phase 2: merge down to kMin, one state per strictly smaller size.
	for ws.size() > kMin {
		pi, ok := ps.best(nil, ws.evalAdd)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return nil, err
		}
		snapshot()
	}
	return out, nil
}
