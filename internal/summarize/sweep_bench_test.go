package summarize

import "testing"

// BenchmarkSweeperRunD measures one pooled Bottom-Up replay in isolation —
// the unit the precompute grid runs hundreds of times. After the first
// iteration every replay reuses a pooled state, so allocs/op reports the
// steady-state allocation cost of a replay (trace snapshots only), the
// figure the dense-state refactor targets.
func BenchmarkSweeperRunD(b *testing.B) {
	ix := randomIndex(b, 31, 400, 5, 4, 80)
	sw, err := NewSweeper(ix, 80, 20)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sw.RunD(2, 1); err != nil { // warm the pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.RunD(1+i%4, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweeperRunDReference is the same replay through the reference
// (map-based, clone-per-replay) engine, for before/after comparison in one
// binary.
func BenchmarkSweeperRunDReference(b *testing.B) {
	ix := randomIndex(b, 31, 400, 5, 4, 80)
	base := newRefWorkset(ix, true)
	if err := refFixedOrderPhase(base, Params{K: 40, L: 80, D: 0}, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := refRunD(base, 1+i%4, 1); err != nil {
			b.Fatal(err)
		}
	}
}
