package summarize

import (
	"sync"
	"testing"
)

// TestSolutionForBinarySearch checks the binary search against a linear scan
// over traces with skipped sizes (merges can remove several clusters at
// once, so consecutive states may differ in size by more than one).
func TestSolutionForBinarySearch(t *testing.T) {
	ss := &SweepStates{States: []SweepState{
		{Size: 9, Sum: 9}, {Size: 7, Sum: 7}, {Size: 4, Sum: 4}, {Size: 2, Sum: 2},
	}}
	linear := func(k int) (*SweepState, bool) {
		for i := range ss.States {
			if ss.States[i].Size <= k {
				return &ss.States[i], true
			}
		}
		return nil, false
	}
	for k := 0; k <= 12; k++ {
		want, wantOK := linear(k)
		got, gotOK := ss.SolutionFor(k)
		if gotOK != wantOK || got != want {
			t.Errorf("SolutionFor(%d) = %v, %v; linear scan gives %v, %v", k, got, gotOK, want, wantOK)
		}
	}
	empty := &SweepStates{}
	if _, ok := empty.SolutionFor(5); ok {
		t.Error("SolutionFor on empty trace: want ok=false")
	}
}

// TestPooledReplayIsolation audits the pooled replay states: a replay must
// leave the shared base workset untouched, a reused (reset) state must
// reproduce a fresh state's trace exactly, and resetFrom must rewind a
// heavily mutated workset to the base solution with an invalidated
// Delta-Judgment cache.
func TestPooledReplayIsolation(t *testing.T) {
	ix := randomIndex(t, 21, 120, 4, 4, 25)
	sw, err := NewSweeper(ix, 25, 10)
	if err != nil {
		t.Fatal(err)
	}
	base := sw.base
	wantIDs := sortedIDs(base)
	wantSum, wantCnt, wantRound := base.sum, base.cnt, base.round
	wantCovered := base.covered.clone()

	// First replay allocates a state; later replays must reuse it (the calls
	// are sequential, so the pool always has the state back by the next Get).
	first, err := sw.RunD(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := sw.RunD(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.States) != len(first.States) {
			t.Fatalf("replay %d: %d states, first replay had %d", i, len(again.States), len(first.States))
		}
		for j := range first.States {
			sa, sb := &first.States[j], &again.States[j]
			if sa.Size != sb.Size || sa.Sum != sb.Sum || sa.Count != sb.Count {
				t.Fatalf("replay %d state %d differs: %+v vs %+v", i, j, sa, sb)
			}
			for x := range sa.Clusters {
				if sa.Clusters[x] != sb.Clusters[x] {
					t.Fatalf("replay %d state %d cluster %d differs", i, j, x)
				}
			}
		}
	}
	st := sw.Stats()
	if st.Replays != 4 {
		t.Errorf("Replays = %d, want 4", st.Replays)
	}
	if st.PooledReuses > 3 {
		t.Errorf("PooledReuses = %d, want <= 3 (only 3 replays could possibly reuse)", st.PooledReuses)
	}
	// sync.Pool drops Put items at random under the race detector, so the
	// exact count only holds in a normal build.
	if !raceEnabled && st.PooledReuses != 3 {
		t.Errorf("PooledReuses = %d, want 3 (sequential replays must reuse the pooled state)", st.PooledReuses)
	}

	// The base must be untouched by all of it.
	gotIDs := sortedIDs(base)
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("base cluster count changed: %d -> %d", len(wantIDs), len(gotIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("base cluster set changed at %d: %d -> %d", i, wantIDs[i], gotIDs[i])
		}
	}
	if base.sum != wantSum || base.cnt != wantCnt || base.round != wantRound {
		t.Errorf("base accumulators changed: sum %v->%v cnt %d->%d round %d->%d",
			wantSum, base.sum, wantCnt, base.cnt, wantRound, base.round)
	}
	for i := range wantCovered {
		if base.covered[i] != wantCovered[i] {
			t.Fatalf("base coverage bitmap word %d changed", i)
		}
	}

	// resetFrom rewinds a mutated workset: merge a pooled state down to one
	// cluster, reset it, and check it mirrors the base with a cold cache.
	rs, _ := sw.getState()
	rs.ws.resetFrom(base)
	ps := newPairSet(rs.ws)
	for rs.ws.size() > 1 {
		pi, ok := ps.best(nil, rs.ws.evalAdd)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			t.Fatal(err)
		}
	}
	rs.ws.resetFrom(base)
	if got := sortedIDs(rs.ws); len(got) != len(wantIDs) {
		t.Fatalf("reset state has %d clusters, want %d", len(got), len(wantIDs))
	} else {
		for i := range wantIDs {
			if got[i] != wantIDs[i] {
				t.Fatalf("reset state cluster %d = %d, want %d", i, got[i], wantIDs[i])
			}
		}
	}
	if rs.ws.sum != wantSum || rs.ws.cnt != wantCnt || rs.ws.round != 0 {
		t.Errorf("reset state accumulators: sum %v cnt %d round %d, want %v %d 0",
			rs.ws.sum, rs.ws.cnt, rs.ws.round, wantSum, wantCnt)
	}
	for i := range wantCovered {
		if rs.ws.covered[i] != wantCovered[i] {
			t.Fatalf("reset state coverage word %d differs from base", i)
		}
	}
	for id := range rs.ws.cacheGen {
		if rs.ws.cacheGen[id] == rs.ws.gen {
			t.Fatalf("reset state has a live Delta-Judgment entry for cluster %d; the cache must start cold", id)
		}
	}
	// A marginal computed on the reset state must match a direct scan
	// against the base coverage (the stamp bump must have invalidated any
	// entry left over from the mutation run).
	probe := ix.AllStar()
	var wantDSum float64
	var wantDCnt int
	for _, tt := range probe.Cov {
		if !base.covered.has(tt) {
			wantDSum += ix.Space.Vals[tt]
			wantDCnt++
		}
	}
	gotDSum, gotDCnt := rs.ws.marginal(probe)
	if gotDCnt != wantDCnt || gotDSum != wantDSum {
		t.Fatalf("marginal on reset state = (%v, %d), want (%v, %d)", gotDSum, gotDCnt, wantDSum, wantDCnt)
	}
}

// TestRunDConcurrentMatchesSequential replays several Ds concurrently from
// one shared Sweeper and checks each trace is identical to a sequential
// replay. Run with -race this is the safety proof for the parallel
// precompute fan-out.
func TestRunDConcurrentMatchesSequential(t *testing.T) {
	ix := randomIndex(t, 22, 150, 4, 4, 30)
	sw, err := NewSweeper(ix, 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	ds := []int{0, 1, 2, 3, 4}
	want := make([]*SweepStates, len(ds))
	for i, d := range ds {
		if want[i], err = sw.RunD(d, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*SweepStates, len(ds))
	errs := make([]error, len(ds))
	var wg sync.WaitGroup
	for i := range ds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = sw.RunD(ds[i], 1)
		}(i)
	}
	wg.Wait()
	for i, d := range ds {
		if errs[i] != nil {
			t.Fatalf("concurrent RunD(%d): %v", d, errs[i])
		}
		a, b := want[i], got[i]
		if len(a.States) != len(b.States) {
			t.Fatalf("D=%d: %d states sequential, %d concurrent", d, len(a.States), len(b.States))
		}
		for j := range a.States {
			sa, sb := &a.States[j], &b.States[j]
			if sa.Size != sb.Size || sa.Sum != sb.Sum || sa.Count != sb.Count {
				t.Fatalf("D=%d state %d differs: %+v vs %+v", d, j, sa, sb)
			}
			for x := range sa.Clusters {
				if sa.Clusters[x] != sb.Clusters[x] {
					t.Fatalf("D=%d state %d cluster %d differs", d, j, x)
				}
			}
		}
	}
}
