package summarize

import (
	"sync"
	"testing"
)

// TestSolutionForBinarySearch checks the binary search against a linear scan
// over traces with skipped sizes (merges can remove several clusters at
// once, so consecutive states may differ in size by more than one).
func TestSolutionForBinarySearch(t *testing.T) {
	ss := &SweepStates{States: []SweepState{
		{Size: 9, Sum: 9}, {Size: 7, Sum: 7}, {Size: 4, Sum: 4}, {Size: 2, Sum: 2},
	}}
	linear := func(k int) (*SweepState, bool) {
		for i := range ss.States {
			if ss.States[i].Size <= k {
				return &ss.States[i], true
			}
		}
		return nil, false
	}
	for k := 0; k <= 12; k++ {
		want, wantOK := linear(k)
		got, gotOK := ss.SolutionFor(k)
		if gotOK != wantOK || got != want {
			t.Errorf("SolutionFor(%d) = %v, %v; linear scan gives %v, %v", k, got, gotOK, want, wantOK)
		}
	}
	empty := &SweepStates{}
	if _, ok := empty.SolutionFor(5); ok {
		t.Error("SolutionFor on empty trace: want ok=false")
	}
}

// TestWorksetCloneIsolation audits that clone shares no mutable state with
// the base workset: running a full Bottom-Up replay on the clone must leave
// the base's clusters, coverage bitmap, objective accumulators, and
// Delta-Judgment cache untouched.
func TestWorksetCloneIsolation(t *testing.T) {
	ix := randomIndex(t, 21, 120, 4, 4, 25)
	sw, err := NewSweeper(ix, 25, 10)
	if err != nil {
		t.Fatal(err)
	}
	base := sw.base
	wantIDs := sortedIDs(base)
	wantSum, wantCnt, wantRound := base.sum, base.cnt, base.round
	wantCovered := base.covered.clone()
	wantCacheLen := len(base.cache)
	wantLastDelta := append([]int32(nil), base.lastDelta...)

	c := base.clone()
	if len(c.cache) != 0 {
		t.Errorf("clone cache has %d entries, want 0 (a shared or copied cache would leak *deltaEntry mutations)", len(c.cache))
	}
	if c.lastDelta != nil {
		t.Error("clone lastDelta is non-nil; it must not alias the base's slice")
	}

	// Mutate the clone heavily: enforce a distance constraint and merge all
	// the way down to a single cluster.
	if _, err := sw.RunD(2, 1); err != nil {
		t.Fatal(err)
	}
	ps := newPairSet(c)
	for c.size() > 1 {
		pi, ok := ps.best(nil, c.evalAdd)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			t.Fatal(err)
		}
	}

	gotIDs := sortedIDs(base)
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("base cluster count changed: %d -> %d", len(wantIDs), len(gotIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("base cluster set changed at %d: %d -> %d", i, wantIDs[i], gotIDs[i])
		}
	}
	if base.sum != wantSum || base.cnt != wantCnt || base.round != wantRound {
		t.Errorf("base accumulators changed: sum %v->%v cnt %d->%d round %d->%d",
			wantSum, base.sum, wantCnt, base.cnt, wantRound, base.round)
	}
	for i := range wantCovered {
		if base.covered[i] != wantCovered[i] {
			t.Fatalf("base coverage bitmap word %d changed", i)
		}
	}
	if len(base.cache) != wantCacheLen {
		t.Errorf("base cache size changed: %d -> %d", wantCacheLen, len(base.cache))
	}
	if len(base.lastDelta) != len(wantLastDelta) {
		t.Errorf("base lastDelta length changed: %d -> %d", len(wantLastDelta), len(base.lastDelta))
	}
}

// TestRunDConcurrentMatchesSequential replays several Ds concurrently from
// one shared Sweeper and checks each trace is identical to a sequential
// replay. Run with -race this is the safety proof for the parallel
// precompute fan-out.
func TestRunDConcurrentMatchesSequential(t *testing.T) {
	ix := randomIndex(t, 22, 150, 4, 4, 30)
	sw, err := NewSweeper(ix, 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	ds := []int{0, 1, 2, 3, 4}
	want := make([]*SweepStates, len(ds))
	for i, d := range ds {
		if want[i], err = sw.RunD(d, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*SweepStates, len(ds))
	errs := make([]error, len(ds))
	var wg sync.WaitGroup
	for i := range ds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = sw.RunD(ds[i], 1)
		}(i)
	}
	wg.Wait()
	for i, d := range ds {
		if errs[i] != nil {
			t.Fatalf("concurrent RunD(%d): %v", d, errs[i])
		}
		a, b := want[i], got[i]
		if len(a.States) != len(b.States) {
			t.Fatalf("D=%d: %d states sequential, %d concurrent", d, len(a.States), len(b.States))
		}
		for j := range a.States {
			sa, sb := &a.States[j], &b.States[j]
			if sa.Size != sb.Size || sa.Sum != sb.Sum || sa.Count != sb.Count {
				t.Fatalf("D=%d state %d differs: %+v vs %+v", d, j, sa, sb)
			}
			for x := range sa.Clusters {
				if sa.Clusters[x] != sb.Clusters[x] {
					t.Fatalf("D=%d state %d cluster %d differs", d, j, x)
				}
			}
		}
	}
}
