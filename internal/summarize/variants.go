package summarize

import (
	"fmt"

	"qagview/internal/kmodes"
	"qagview/internal/lattice"
	"qagview/internal/pattern"
)

// RandomFixedOrder is the random-Fixed-Order variant of Section 5.2: pick k
// elements at random from the top L and process their singleton clusters
// first, then all top-L elements in descending value order.
func RandomFixedOrder(ix *lattice.Index, p Params, opts ...Option) (*Solution, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	rng := cfg.rng
	if rng == nil {
		return nil, fmt.Errorf("summarize: RandomFixedOrder requires WithRand")
	}
	k := p.K
	if k > p.L {
		k = p.L
	}
	seeds := make([]*lattice.Cluster, 0, k)
	for _, rank := range rng.Perm(p.L)[:k] {
		seeds = append(seeds, ix.Singleton(rank))
	}
	ws := newWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	if err := fixedOrderPhase(ws, p, seeds); err != nil {
		return nil, err
	}
	return finish(ws, &cfg), nil
}

// KMeansFixedOrder is the k-means-Fixed-Order variant of Section 5.2: run
// k-modes clustering (categorical k-means with random seeding) on the top-L
// elements, compute the minimum pattern covering each resulting cluster, and
// process those k patterns before the top-L elements.
func KMeansFixedOrder(ix *lattice.Index, p Params, opts ...Option) (*Solution, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	rng := cfg.rng
	if rng == nil {
		return nil, fmt.Errorf("summarize: KMeansFixedOrder requires WithRand")
	}
	topL := make([][]int32, p.L)
	for rank := 0; rank < p.L; rank++ {
		topL[rank] = ix.Space.Tuples[rank]
	}
	km, err := kmodes.Cluster(topL, p.K, rng, 50)
	if err != nil {
		return nil, err
	}
	var seeds []*lattice.Cluster
	for _, members := range km.Members() {
		if len(members) == 0 {
			continue
		}
		// Minimum pattern covering all members: iterated LCA.
		pat := pattern.FromTuple(topL[members[0]])
		for _, mi := range members[1:] {
			pattern.LCAInto(pat, pat, pattern.FromTuple(topL[mi]))
		}
		c, ok := ix.Lookup(pat)
		if !ok {
			// The LCA of top-L tuples is an ancestor of a top-L tuple, so it
			// is always generated.
			return nil, fmt.Errorf("summarize: k-modes seed %v missing from index", pat)
		}
		seeds = append(seeds, c)
	}
	ws := newWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	if err := fixedOrderPhase(ws, p, seeds); err != nil {
		return nil, err
	}
	return finish(ws, &cfg), nil
}

// Algorithm names the summarization algorithms for table-driven callers
// (CLI, experiments).
type Algorithm string

// The supported algorithms.
const (
	AlgoBottomUp           Algorithm = "bottom-up"
	AlgoFixedOrder         Algorithm = "fixed-order"
	AlgoHybrid             Algorithm = "hybrid"
	AlgoBruteForce         Algorithm = "brute-force"
	AlgoRandomFixedOrder   Algorithm = "random-fixed-order"
	AlgoKMeansFixedOrder   Algorithm = "kmeans-fixed-order"
	AlgoBottomUpMaxLCA     Algorithm = "bottom-up-max-lca"
	AlgoBottomUpLevelStart Algorithm = "bottom-up-level-start"
)

// Run dispatches by algorithm name. The randomized variants need WithRand;
// see the individual functions.
func Run(algo Algorithm, ix *lattice.Index, p Params, opts ...Option) (*Solution, error) {
	switch algo {
	case AlgoBottomUp:
		return BottomUp(ix, p, opts...)
	case AlgoFixedOrder:
		return FixedOrder(ix, p, opts...)
	case AlgoHybrid:
		return Hybrid(ix, p, opts...)
	case AlgoBruteForce:
		return BruteForce(ix, p)
	case AlgoRandomFixedOrder:
		return RandomFixedOrder(ix, p, opts...)
	case AlgoKMeansFixedOrder:
		return KMeansFixedOrder(ix, p, opts...)
	case AlgoBottomUpMaxLCA:
		return BottomUpMaxLCA(ix, p, opts...)
	case AlgoBottomUpLevelStart:
		return BottomUpLevelStart(ix, p, opts...)
	default:
		return nil, fmt.Errorf("summarize: unknown algorithm %q", algo)
	}
}

// Algorithms lists the supported algorithm names.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoBottomUp, AlgoFixedOrder, AlgoHybrid, AlgoBruteForce,
		AlgoRandomFixedOrder, AlgoKMeansFixedOrder,
		AlgoBottomUpMaxLCA, AlgoBottomUpLevelStart,
	}
}
