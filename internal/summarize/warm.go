package summarize

// Warm start across data generations: when incremental maintenance
// (lattice.ApplyDelta) produces a successor index, the next sweeper does not
// start from scratch. The shared Fixed-Order phase must re-run — appended
// and deleted tuples change coverage sums, so the greedy choices may change,
// and correctness demands re-deriving them — but every allocation-heavy
// piece of replay state carries over: the base workset's dense membership
// and Delta-Judgment arrays, the coverage bitmaps, every pooled replay state
// (worksets + pair buffers), and, when the delta preserved cluster ids, the
// LCA memos, whose id-keyed entries remain valid facts about the new index.
// The result is bit-identical to a cold NewSweeper over the same index (see
// warm_test.go); only the allocation profile differs.

// Warm returns a sweeper over the successor index ix, reusing this sweeper's
// state as described above. idsPreserved must be true only when every
// cluster id of the receiver's index names the same pattern in ix — the
// DeltaStats.FastPath guarantee of lattice.ApplyDelta — and controls whether
// LCA memos survive or are flushed. The receiver must not be used after
// Warm returns: its base workset and pooled states now belong to the new
// sweeper.
func (sw *Sweeper) Warm(ix *Index, idsPreserved bool) (*Sweeper, error) {
	p := Params{K: sw.kMax * sw.cfg.hybridC, L: sw.l, D: 0}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := sw.base
	ws.adoptIndex(ix, idsPreserved)
	if err := fixedOrderPhase(ws, p, nil); err != nil {
		return nil, err
	}
	nw := &Sweeper{ix: ix, cfg: sw.cfg, l: sw.l, kMax: sw.kMax, base: ws}
	// Migrate every pooled replay state to the new index. Draining the old
	// pool is best-effort (the GC may have collected entries); anything not
	// migrated is simply re-allocated on first use, as always.
	for {
		v := sw.pool.Get()
		if v == nil {
			break
		}
		st := v.(*replayState)
		st.ws.adoptIndex(ix, idsPreserved)
		nw.pool.Put(st)
	}
	return nw, nil
}

// adoptIndex rebinds a workset to a successor index, growing the dense
// id-indexed and tuple-indexed arrays to the new shapes and resetting the
// solution state to empty (the state a fresh newWorkset presents). The
// Delta-Judgment cache and membership stamps are invalidated by the
// generation bump; keepMemo forwards the id-stability guarantee to the LCA
// memo (see lattice.LCAMemo.Rebind).
func (ws *workset) adoptIndex(ix *Index, keepMemo bool) {
	ws.ix = ix
	nc := ix.NumClusters()
	if len(ws.inSol) < nc {
		ws.inSol = append(ws.inSol, make([]uint32, nc-len(ws.inSol))...)
	}
	if ws.delta && len(ws.cache) < nc {
		ws.cache = append(ws.cache, make([]deltaEntry, nc-len(ws.cache))...)
		ws.cacheGen = append(ws.cacheGen, make([]uint32, nc-len(ws.cacheGen))...)
	}
	// Tuple-indexed bitmaps must match the new tuple count exactly (resetFrom
	// copies whole bitmaps between worksets of one sweeper). lastDelta holds
	// tuple indices of the old space, meaningless now — drop it and zero the
	// bitmap rather than unsetting stale (possibly out-of-range) indices.
	words := (ix.Space.N() + 63) / 64
	ws.covered = resizeBitset(ws.covered, words)
	ws.ldBits = resizeBitset(ws.ldBits, words)
	ws.lastDelta = ws.lastDelta[:0]
	ws.lca.Rebind(ix, keepMemo)
	ws.gen++
	if ws.gen == 0 { // stamp wrap-around: clear and restart, as in resetFrom
		for i := range ws.inSol {
			ws.inSol[i] = 0
		}
		for i := range ws.cacheGen {
			ws.cacheGen[i] = 0
		}
		ws.gen = 1
	}
	ws.ids = ws.ids[:0]
	ws.sum, ws.cnt = 0, 0
	ws.round = 0
	ws.evalFull, ws.evalDelta = 0, 0
}

// resizeBitset returns a zeroed bitset of exactly `words` words, reusing the
// given backing array when it is large enough.
func resizeBitset(b bitset, words int) bitset {
	if cap(b) < words {
		return make(bitset, words)
	}
	b = b[:words]
	for i := range b {
		b[i] = 0
	}
	return b
}
