package summarize

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qagview/internal/lattice"
)

// assertTracesEqual compares two per-D sweep traces bit for bit: state
// sizes, cluster id sets, exact sum bits, and counts.
func assertTracesEqual(t *testing.T, label string, got, want *SweepStates) {
	t.Helper()
	if got.D != want.D || len(got.States) != len(want.States) {
		t.Fatalf("%s: trace shape (D=%d, %d states) vs (D=%d, %d states)",
			label, got.D, len(got.States), want.D, len(want.States))
	}
	for i := range got.States {
		g, w := &got.States[i], &want.States[i]
		if g.Size != w.Size || g.Count != w.Count {
			t.Fatalf("%s: state %d is (size %d, count %d) vs (size %d, count %d)",
				label, i, g.Size, g.Count, w.Size, w.Count)
		}
		if math.Float64bits(g.Sum) != math.Float64bits(w.Sum) {
			t.Fatalf("%s: state %d sum %v vs %v", label, i, g.Sum, w.Sum)
		}
		for j := range g.Clusters {
			if g.Clusters[j] != w.Clusters[j] {
				t.Fatalf("%s: state %d cluster[%d] = %d vs %d", label, i, j, g.Clusters[j], w.Clusters[j])
			}
		}
	}
}

// applyRandomDelta mutates the space behind ix through ApplyDelta: appends
// drawn from the active domains (optionally one new leader that churns the
// top L) plus a couple of deletes outside it.
func applyRandomDelta(t *testing.T, ix *lattice.Index, seed int64, leader bool) (*lattice.Index, lattice.DeltaStats) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := ix.Space
	var d lattice.Delta
	for i := 0; i < 6; i++ {
		row := make([]string, s.M())
		for j := range row {
			vals := s.Dicts[j].Values()
			row[j] = vals[rng.Intn(len(vals))]
		}
		d.AppendRows = append(d.AppendRows, row)
		if leader && i == 0 {
			d.AppendVals = append(d.AppendVals, s.Vals[0]+1)
		} else {
			d.AppendVals = append(d.AppendVals, s.Vals[ix.L-1]-1-rng.Float64())
		}
	}
	d.DeleteRanks = []int{s.N() - 1, s.N() - 3}
	nix, stats, err := ix.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FastPath == leader {
		t.Fatalf("fixture: leader=%v but FastPath=%v", leader, stats.FastPath)
	}
	return nix, stats
}

// TestWarmSweeperMatchesCold pins the warm-start contract: a sweeper warmed
// onto a delta-maintained index — reusing the previous generation's replay
// states and (on the fast path) LCA memos — replays every (k, D) trace
// bit-identically to a cold sweeper built from scratch, across a chain of
// fast-path and slow-path deltas.
func TestWarmSweeperMatchesCold(t *testing.T) {
	ix := randomIndex(t, 555, 120, 4, 4, 30)
	const L, kMax = 30, 12
	sw, err := NewSweeper(ix, L, kMax)
	if err != nil {
		t.Fatal(err)
	}
	// Populate the pool so Warm has states to migrate.
	for d := 0; d <= ix.Space.M(); d++ {
		if _, err := sw.RunD(d, 1); err != nil {
			t.Fatal(err)
		}
	}
	for step, leader := range []bool{false, true, false} {
		nix, stats := applyRandomDelta(t, ix, 600+int64(step), leader)
		warm, err := sw.Warm(nix, stats.FastPath)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewSweeper(nix, L, kMax)
		if err != nil {
			t.Fatal(err)
		}
		if warm.PoolSize() != cold.PoolSize() {
			t.Fatalf("step %d: warm pool %d vs cold %d", step, warm.PoolSize(), cold.PoolSize())
		}
		for d := 0; d <= nix.Space.M(); d++ {
			wt, err := warm.RunD(d, 1)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := cold.RunD(d, 1)
			if err != nil {
				t.Fatal(err)
			}
			assertTracesEqual(t, fmt.Sprintf("step%d/D%d", step, d), wt, ct)
		}
		if reuses := warm.Stats().PooledReuses; reuses == 0 {
			t.Fatalf("step %d: warm sweeper never reused a migrated replay state", step)
		}
		if stats.FastPath {
			// Fast-path warm starts keep LCA memos: the very first replays
			// must already answer some LCA lookups from cache.
			if hits := warm.Stats().LCAMemoHits; hits == 0 {
				t.Fatalf("step %d: fast-path warm start kept no LCA memo entries", step)
			}
		}
		ix, sw = nix, warm
	}
}

// TestWarmSweeperRejectsBadIndex pins Warm's validation: an index whose L is
// below the sweeper's shared-phase L cannot host the replays.
func TestWarmSweeperRejectsBadIndex(t *testing.T) {
	ix := randomIndex(t, 556, 60, 3, 5, 20)
	sw, err := NewSweeper(ix, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	small := randomIndex(t, 557, 60, 3, 5, 10) // L = 10 < 20
	if _, err := sw.Warm(small, false); err == nil {
		t.Fatal("want an error warming onto an index with smaller L")
	}
}
