package summarize

import (
	"sort"

	"qagview/internal/lattice"
)

// workset is the mutable solution state shared by the greedy algorithms: the
// current cluster set, the covered-tuple bitmap with its running sum and
// count, and the Delta-Judgment cache (Algorithm 2 in the paper) that lets
// candidate evaluations reuse marginal-benefit computations from previous
// rounds.
type workset struct {
	ix    *lattice.Index
	delta bool
	obj   Objective

	clusters map[int32]*lattice.Cluster // current solution, by cluster id
	covered  bitset
	sum      float64
	cnt      int

	round     int     // merge round counter; advances on every mutation
	lastDelta []int32 // tuples newly covered in the previous round, ascending

	cache map[int32]*deltaEntry // candidate cluster id -> cached marginals

	// evalFull counts full coverage scans, for the Figure 8b ablation.
	evalFull int
	// evalDelta counts delta-updated evaluations.
	evalDelta int
}

// deltaEntry caches, for a candidate cluster c, the sum and count of tuples
// in cov(c) that were NOT covered by the solution as of round asOf.
type deltaEntry struct {
	asOf int
	dsum float64
	dcnt int
}

func newWorkset(ix *lattice.Index, useDelta bool) *workset {
	return &workset{
		ix:       ix,
		delta:    useDelta,
		clusters: make(map[int32]*lattice.Cluster),
		covered:  newBitset(ix.Space.N()),
		cache:    make(map[int32]*deltaEntry),
	}
}

// size returns the number of clusters in the current solution.
func (ws *workset) size() int { return len(ws.clusters) }

// avg returns the current objective value.
func (ws *workset) avg() float64 {
	if ws.cnt == 0 {
		return 0
	}
	return ws.sum / float64(ws.cnt)
}

// marginal returns the sum and count of tuples in cov(c) not yet covered.
// With Delta-Judgment enabled it reuses the cached marginals when they are at
// most one round stale, subtracting the contribution of the tuples that were
// newly covered last round (the list T_j \ T_{j-1} of Algorithm 2); otherwise
// it falls back to a full scan of cov(c) against the coverage bitmap.
func (ws *workset) marginal(c *lattice.Cluster) (dsum float64, dcnt int) {
	if ws.delta {
		if e, ok := ws.cache[c.ID]; ok {
			switch {
			case e.asOf == ws.round:
				ws.evalDelta++
				return e.dsum, e.dcnt
			case e.asOf == ws.round-1:
				// Subtract tuples covered last round that c also covers.
				for _, t := range ws.lastDelta {
					if containsSorted(c.Cov, t) {
						e.dsum -= ws.ix.Space.Vals[t]
						e.dcnt--
					}
				}
				e.asOf = ws.round
				ws.evalDelta++
				return e.dsum, e.dcnt
			}
		}
	}
	ws.evalFull++
	for _, t := range c.Cov {
		if !ws.covered.has(t) {
			dsum += ws.ix.Space.Vals[t]
			dcnt++
		}
	}
	if ws.delta {
		ws.cache[c.ID] = &deltaEntry{asOf: ws.round, dsum: dsum, dcnt: dcnt}
	}
	return dsum, dcnt
}

// evalAdd returns the objective value of the solution if cluster c were
// added (covering its uncovered tuples), per the tentative-value formula of
// Section 6.3. Under the MinSize objective, fewer total covered elements is
// better, so the score is the negated tentative coverage count.
func (ws *workset) evalAdd(c *lattice.Cluster) float64 {
	dsum, dcnt := ws.marginal(c)
	if ws.obj == MinSize {
		return -float64(ws.cnt + dcnt)
	}
	if ws.cnt+dcnt == 0 {
		return 0
	}
	return (ws.sum + dsum) / float64(ws.cnt+dcnt)
}

// containsSorted reports whether the ascending slice cov contains t.
func containsSorted(cov []int32, t int32) bool {
	i := sort.Search(len(cov), func(i int) bool { return cov[i] >= t })
	return i < len(cov) && cov[i] == t
}

// add inserts cluster c into the solution, removing any existing clusters
// that c covers (the Merge procedure's incomparability maintenance), and
// extends the covered set. It returns the ids of removed clusters.
func (ws *workset) add(c *lattice.Cluster) (removed []int32) {
	for id, old := range ws.clusters {
		if id != c.ID && c.Pat.Covers(old.Pat) {
			removed = append(removed, id)
			delete(ws.clusters, id)
		}
	}
	ws.clusters[c.ID] = c
	var newly []int32
	for _, t := range c.Cov {
		if !ws.covered.has(t) {
			ws.covered.set(t)
			ws.sum += ws.ix.Space.Vals[t]
			ws.cnt++
			newly = append(newly, t)
		}
	}
	ws.round++
	ws.lastDelta = newly
	return removed
}

// merge replaces clusters a and b (both in the solution) by their LCA
// cluster, removing any other clusters the LCA covers. It returns the new
// cluster and all removed ids.
func (ws *workset) merge(a, b *lattice.Cluster) (*lattice.Cluster, []int32, error) {
	lca, err := ws.ix.LCACluster(a, b)
	if err != nil {
		return nil, nil, err
	}
	removed := ws.add(lca) // covers a and b, so both are removed
	return lca, removed, nil
}

// solution snapshots the current state as a Solution.
func (ws *workset) solution() *Solution {
	out := make([]*lattice.Cluster, 0, len(ws.clusters))
	for _, c := range ws.clusters {
		out = append(out, c)
	}
	return newSolution(ws.ix, out)
}

// clusterList returns the current clusters in unspecified order.
func (ws *workset) clusterList() []*lattice.Cluster {
	out := make([]*lattice.Cluster, 0, len(ws.clusters))
	for _, c := range ws.clusters {
		out = append(out, c)
	}
	return out
}
