package summarize

import (
	"sort"

	"qagview/internal/lattice"
)

// workset is the mutable solution state shared by the greedy algorithms: the
// current cluster set, the covered-tuple bitmap with its running sum and
// count, and the Delta-Judgment cache (Algorithm 2 in the paper) that lets
// candidate evaluations reuse marginal-benefit computations from previous
// rounds.
//
// All per-cluster state is kept dense, indexed by cluster id, instead of in
// maps: membership and the Delta-Judgment cache are generation-stamped arrays
// (one O(1) bump invalidates everything, so a pooled workset resets without
// reallocating), and the solution itself is maintained as a sorted id slice.
// This makes a workset fully reusable across replays — see resetFrom.
type workset struct {
	ix    *lattice.Index
	delta bool
	obj   Objective

	// ids is the current solution as cluster ids, sorted ascending.
	ids []int32
	// inSol stamps solution membership: inSol[id] == gen means id is in ids.
	inSol []uint32
	gen   uint32

	covered bitset
	sum     float64
	cnt     int

	round     int     // merge round counter; advances on every mutation
	lastDelta []int32 // tuples newly covered in the previous round, ascending
	ldBits    bitset  // bitset over lastDelta, for O(1) membership probes

	// cache is the Delta-Judgment cache, dense by candidate cluster id; an
	// entry is live only while cacheGen[id] == gen.
	cache    []deltaEntry
	cacheGen []uint32

	// lca memoizes LCA cluster ids for the pairs the merge loops probe.
	lca *lattice.LCAMemo

	removedBuf []int32 // scratch backing the slice returned by add

	// evalFull counts full coverage scans, for the Figure 8b ablation.
	evalFull int
	// evalDelta counts delta-updated evaluations.
	evalDelta int
}

// deltaEntry caches, for a candidate cluster c, the sum and count of tuples
// in cov(c) that were NOT covered by the solution as of round asOf.
type deltaEntry struct {
	asOf int32
	dcnt int32
	dsum float64
}

func newWorkset(ix *lattice.Index, useDelta bool) *workset {
	ws := &workset{
		ix:      ix,
		delta:   useDelta,
		gen:     1,
		inSol:   make([]uint32, ix.NumClusters()),
		covered: newBitset(ix.Space.N()),
		ldBits:  newBitset(ix.Space.N()),
		lca:     ix.NewLCAMemo(),
	}
	if useDelta {
		ws.cache = make([]deltaEntry, ix.NumClusters())
		ws.cacheGen = make([]uint32, ix.NumClusters())
	}
	return ws
}

// size returns the number of clusters in the current solution.
func (ws *workset) size() int { return len(ws.ids) }

// has reports whether the cluster id is in the current solution.
func (ws *workset) has(id int32) bool { return ws.inSol[id] == ws.gen }

// avg returns the current objective value.
func (ws *workset) avg() float64 {
	if ws.cnt == 0 {
		return 0
	}
	return ws.sum / float64(ws.cnt)
}

// ldBitsetScanFactor bounds when the one-round-stale cache update scans the
// candidate's coverage list against the last-delta bitset: a linear pass is
// cache-friendly but proportional to |cov(c)|, so for clusters much larger
// than the delta it is cheaper to test each delta tuple against the cluster
// pattern directly (cov(c) is by construction exactly the tuples the pattern
// covers). Both paths enumerate the intersection in ascending tuple order,
// so the floating-point subtraction order — and hence the result — is
// identical.
const ldBitsetScanFactor = 32

// marginal returns the sum and count of tuples in cov(c) not yet covered.
// With Delta-Judgment enabled it reuses the cached marginals when they are at
// most one round stale, subtracting the contribution of the tuples that were
// newly covered last round (the list T_j \ T_{j-1} of Algorithm 2); otherwise
// it falls back to a full scan of cov(c) against the coverage bitmap.
func (ws *workset) marginal(c *lattice.Cluster) (dsum float64, dcnt int) {
	if ws.delta && ws.cacheGen[c.ID] == ws.gen {
		e := &ws.cache[c.ID]
		switch {
		case int(e.asOf) == ws.round:
			ws.evalDelta++
			return e.dsum, int(e.dcnt)
		case int(e.asOf) == ws.round-1:
			if len(c.Cov) <= ldBitsetScanFactor*len(ws.lastDelta) {
				for _, t := range c.Cov {
					if ws.ldBits.has(t) {
						e.dsum -= ws.ix.Space.Vals[t]
						e.dcnt--
					}
				}
			} else {
				tuples := ws.ix.Space.Tuples
				for _, t := range ws.lastDelta {
					if c.Pat.CoversTuple(tuples[t]) {
						e.dsum -= ws.ix.Space.Vals[t]
						e.dcnt--
					}
				}
			}
			e.asOf = int32(ws.round)
			ws.evalDelta++
			return e.dsum, int(e.dcnt)
		}
	}
	ws.evalFull++
	for _, t := range c.Cov {
		if !ws.covered.has(t) {
			dsum += ws.ix.Space.Vals[t]
			dcnt++
		}
	}
	if ws.delta {
		ws.cache[c.ID] = deltaEntry{asOf: int32(ws.round), dsum: dsum, dcnt: int32(dcnt)}
		ws.cacheGen[c.ID] = ws.gen
	}
	return dsum, dcnt
}

// evalAdd returns the objective value of the solution if cluster c were
// added (covering its uncovered tuples), per the tentative-value formula of
// Section 6.3. Under the MinSize objective, fewer total covered elements is
// better, so the score is the negated tentative coverage count.
func (ws *workset) evalAdd(c *lattice.Cluster) float64 {
	dsum, dcnt := ws.marginal(c)
	if ws.obj == MinSize {
		return -float64(ws.cnt + dcnt)
	}
	if ws.cnt+dcnt == 0 {
		return 0
	}
	return (ws.sum + dsum) / float64(ws.cnt+dcnt)
}

// add inserts cluster c into the solution, removing any existing clusters
// that c covers (the Merge procedure's incomparability maintenance), and
// extends the covered set. It returns the ids of removed clusters, ascending;
// the slice aliases internal scratch and is only valid until the next add.
func (ws *workset) add(c *lattice.Cluster) (removed []int32) {
	removed = ws.removedBuf[:0]
	keep := ws.ids[:0]
	for _, id := range ws.ids {
		if id != c.ID && ws.ix.Covers(c.ID, id) {
			ws.inSol[id] = 0
			removed = append(removed, id)
		} else {
			keep = append(keep, id)
		}
	}
	ws.ids = keep
	if !ws.has(c.ID) {
		ws.inSol[c.ID] = ws.gen
		pos := sort.Search(len(ws.ids), func(i int) bool { return ws.ids[i] >= c.ID })
		ws.ids = append(ws.ids, 0)
		copy(ws.ids[pos+1:], ws.ids[pos:])
		ws.ids[pos] = c.ID
	}
	for _, t := range ws.lastDelta {
		ws.ldBits.unset(t)
	}
	newly := ws.lastDelta[:0]
	for _, t := range c.Cov {
		if !ws.covered.has(t) {
			ws.covered.set(t)
			ws.sum += ws.ix.Space.Vals[t]
			ws.cnt++
			ws.ldBits.set(t)
			newly = append(newly, t)
		}
	}
	ws.round++
	ws.lastDelta = newly
	ws.removedBuf = removed
	return removed
}

// merge replaces clusters a and b (both in the solution) by their LCA
// cluster, removing any other clusters the LCA covers. It returns the new
// cluster and all removed ids (aliasing scratch, like add).
func (ws *workset) merge(a, b *lattice.Cluster) (*lattice.Cluster, []int32, error) {
	id, err := ws.lca.LCAID(a.ID, b.ID)
	if err != nil {
		return nil, nil, err
	}
	lca := ws.ix.Cluster(id)
	removed := ws.add(lca) // covers a and b, so both are removed
	return lca, removed, nil
}

// resetFrom rewinds the workset to base's solution state, reusing every
// buffer: one generation bump invalidates the membership stamps and the
// whole Delta-Judgment cache in O(1), and the coverage bitmap is overwritten
// in place. The LCA memo is deliberately kept — it caches index-level facts
// that never go stale. After resetFrom the workset behaves exactly like a
// fresh deep copy of base with an empty cache (the contract the per-D
// precompute replays relied on when this was workset.clone).
func (ws *workset) resetFrom(base *workset) {
	ws.gen++
	if ws.gen == 0 { // stamp wrap-around: clear and restart
		for i := range ws.inSol {
			ws.inSol[i] = 0
		}
		for i := range ws.cacheGen {
			ws.cacheGen[i] = 0
		}
		ws.gen = 1
	}
	ws.obj = base.obj
	ws.ids = append(ws.ids[:0], base.ids...)
	for _, id := range ws.ids {
		ws.inSol[id] = ws.gen
	}
	copy(ws.covered, base.covered)
	ws.sum, ws.cnt = base.sum, base.cnt
	ws.round = 0
	for _, t := range ws.lastDelta {
		ws.ldBits.unset(t)
	}
	ws.lastDelta = ws.lastDelta[:0]
	ws.evalFull, ws.evalDelta = 0, 0
}

// solution snapshots the current state as a Solution.
func (ws *workset) solution() *Solution {
	out := make([]*lattice.Cluster, 0, len(ws.ids))
	for _, id := range ws.ids {
		out = append(out, ws.ix.Cluster(id))
	}
	return newSolution(ws.ix, out)
}
