// Package tpcds generates a synthetic TPC-DS-like store_sales table, the
// scalability workload of Section 7.4 of the paper. The official TPC-DS
// generator is unavailable offline, so this package produces a 23-attribute
// sales fact table (customer demographics, store, item, date dimensions
// denormalized, plus a net_profit measure) whose aggregate query output
// sizes match the paper's setting (N ≈ 47,361 groups for the reported
// configuration).
package tpcds

import (
	"fmt"
	"math"
	"math/rand"

	"qagview/internal/relation"
)

// Config sizes the synthetic table.
type Config struct {
	Rows int
	Seed int64
}

// DefaultConfig generates 500,000 fact rows; the paper's store_sales has
// 2,880,404, but the summarization experiments depend only on the aggregate
// output size N, which the queries below control.
func DefaultConfig() Config { return Config{Rows: 500_000, Seed: 7} }

// GroupingAttrs lists grouping attributes in the order used when varying m.
var GroupingAttrs = []string{
	"cd_gender", "cd_marital_status", "cd_education", "i_category",
	"cd_credit_rating", "s_state", "d_quarter", "d_year",
	"i_class", "d_weekday",
}

var (
	genders        = []string{"M", "F"}
	maritalStatus  = []string{"S", "M", "D", "W", "U"}
	educations     = []string{"primary", "secondary", "college", "2yrdegree", "4yrdegree", "advanced", "unknown"}
	creditRatings  = []string{"low", "good", "highrisk", "unknown"}
	states         = []string{"TN", "GA", "SC", "NC", "AL", "KY", "VA", "FL", "TX", "OH"}
	categories     = []string{"books", "electronics", "home", "jewelry", "men", "music", "shoes", "sports", "toys", "women"}
	classes        = []string{"c01", "c02", "c03", "c04", "c05", "c06", "c07", "c08"}
	brands         = []string{"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9", "b10"}
	colors         = []string{"red", "blue", "green", "black", "white", "yellow"}
	sizes          = []string{"small", "medium", "large", "xl"}
	weekdaysVocab  = []string{"mon", "tue", "wed", "thu", "fri", "sat", "sun"}
	quartersVocab  = []string{"Q1", "Q2", "Q3", "Q4"}
	promosVocab    = []string{"none", "tv", "radio", "web", "mail"}
	countiesVocab  = []string{"county1", "county2", "county3", "county4", "county5"}
	shiftsVocab    = []string{"morning", "afternoon", "evening"}
	channelsVocab  = []string{"store", "kiosk"}
	depCountVocab  = []int64{0, 1, 2, 3, 4}
	storeIDsDomain = 12
)

// draws holds the per-row attribute draws shared by the flat generator and
// the star-schema generator, in one fixed rng consumption order — both
// shapes are assembled from the same stream, so the denormalized flat table
// is byte-identical to the star's join.
type draws struct {
	gender, marital, education, credit []string
	category, class, state, quarter    []string
	year, quantity, storeID, depCount  []int64
	listPrice, salesPrice, profit      []float64
	brand, color, size, county         []string
	weekday, shift, promo, channel     []string
}

func drawRows(cfg Config) (*draws, error) {
	if cfg.Rows < 1 {
		return nil, fmt.Errorf("tpcds: non-positive row count %d", cfg.Rows)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows
	d := &draws{
		gender: make([]string, n), marital: make([]string, n),
		education: make([]string, n), credit: make([]string, n),
		category: make([]string, n), class: make([]string, n),
		state: make([]string, n), quarter: make([]string, n),
		year: make([]int64, n), quantity: make([]int64, n),
		storeID: make([]int64, n), depCount: make([]int64, n),
		listPrice: make([]float64, n), salesPrice: make([]float64, n),
		profit: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		g := genders[rng.Intn(2)]
		ms := maritalStatus[rng.Intn(len(maritalStatus))]
		ed := educations[rng.Intn(len(educations))]
		cr := creditRatings[rng.Intn(len(creditRatings))]
		cat := categories[rng.Intn(len(categories))]
		cl := classes[rng.Intn(len(classes))]
		st := states[rng.Intn(len(states))]
		q := quartersVocab[rng.Intn(4)]
		year := 1998 + int64(rng.Intn(6))
		qty := int64(1 + rng.Intn(10))
		lp := 5 + rng.Float64()*95
		sp := lp * (0.5 + rng.Float64()*0.5)

		// Planted structure: electronics and jewelry bought by advanced-
		// degree, good-credit customers in Q4 are high-profit; books in Q1
		// for low-credit are loss leaders.
		p := (sp - lp*0.7) * float64(qty)
		if (cat == "electronics" || cat == "jewelry") && ed == "advanced" && cr == "good" {
			p += 40
		}
		if cat == "jewelry" && q == "Q4" {
			p += 25
		}
		if cat == "books" && cr == "low" {
			p -= 30
		}
		if st == "TN" || st == "GA" {
			p += 5
		}
		p += rng.NormFloat64() * 20
		p = math.Round(p*100) / 100

		d.gender[i], d.marital[i], d.education[i], d.credit[i] = g, ms, ed, cr
		d.category[i], d.class[i], d.state[i], d.quarter[i] = cat, cl, st, q
		d.year[i], d.quantity[i], d.listPrice[i], d.salesPrice[i], d.profit[i] = year, qty, lp, sp, p
	}
	d.storeID = make([]int64, n)
	for i := range d.storeID {
		d.storeID[i] = int64(1 + rng.Intn(storeIDsDomain))
	}
	d.depCount = make([]int64, n)
	for i := range d.depCount {
		d.depCount[i] = depCountVocab[rng.Intn(len(depCountVocab))]
	}
	pick := func(vocab []string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[rng.Intn(len(vocab))]
		}
		return out
	}
	// Same consumption order as the historical flat generator's column list.
	d.brand = pick(brands)
	d.color = pick(colors)
	d.size = pick(sizes)
	d.county = pick(countiesVocab)
	d.weekday = pick(weekdaysVocab)
	d.shift = pick(shiftsVocab)
	d.promo = pick(promosVocab)
	d.channel = pick(channelsVocab)
	return d, nil
}

// Generate builds the denormalized store_sales table deterministically from
// cfg (the single wide table the paper's scalability experiments query).
func Generate(cfg Config) (*relation.Relation, error) {
	d, err := drawRows(cfg)
	if err != nil {
		return nil, err
	}
	return relation.FromColumns("store_sales",
		relation.StringCol("cd_gender", d.gender),
		relation.StringCol("cd_marital_status", d.marital),
		relation.StringCol("cd_education", d.education),
		relation.StringCol("cd_credit_rating", d.credit),
		relation.IntCol("cd_dep_count", d.depCount),
		relation.StringCol("i_category", d.category),
		relation.StringCol("i_class", d.class),
		relation.StringCol("i_brand", d.brand),
		relation.StringCol("i_color", d.color),
		relation.StringCol("i_size", d.size),
		relation.IntCol("s_store_id", d.storeID),
		relation.StringCol("s_state", d.state),
		relation.StringCol("s_county", d.county),
		relation.IntCol("d_year", d.year),
		relation.StringCol("d_quarter", d.quarter),
		relation.StringCol("d_weekday", d.weekday),
		relation.StringCol("d_shift", d.shift),
		relation.StringCol("p_promo", d.promo),
		relation.StringCol("s_channel", d.channel),
		relation.IntCol("ss_quantity", d.quantity),
		relation.FloatCol("ss_list_price", d.listPrice),
		relation.FloatCol("ss_sales_price", d.salesPrice),
		relation.FloatCol("net_profit", d.profit),
	)
}

// Star holds the TPC-DS base tables: the fact table with surrogate keys
// into four dimensions. Each dimension enumerates the full cross product of
// its attribute vocabularies (as TPC-DS's customer_demographics does), so
// surrogate keys are computed, not sampled, and the star's join is
// byte-identical to the flat table of Generate for the same Config.
type Star struct {
	Fact     *relation.Relation // store_sales: ss_cdemo_sk, ss_item_sk, ss_store_sk, ss_date_sk, p_promo, measures
	Customer *relation.Relation // customer_demographics: cd_demo_sk, cd_*
	Item     *relation.Relation // item: i_item_sk, i_*
	Store    *relation.Relation // store: s_store_sk, s_*
	Date     *relation.Relation // date_dim: d_date_sk, d_*
}

// Tables returns the star's relations for catalog registration.
func (s *Star) Tables() []*relation.Relation {
	return []*relation.Relation{s.Fact, s.Customer, s.Item, s.Store, s.Date}
}

// indexOf returns the position of v in vocab; the generators only draw from
// their vocabularies, so absence is a bug.
func indexOf(vocab []string, v string) int {
	for i, s := range vocab {
		if s == v {
			return i
		}
	}
	panic("tpcds: value " + v + " not in vocabulary")
}

var yearsVocab = []int64{1998, 1999, 2000, 2001, 2002, 2003}

// GenerateStar builds the base tables deterministically from cfg.
func GenerateStar(cfg Config) (*Star, error) {
	d, err := drawRows(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Rows

	// customer_demographics: genders × marital × education × credit × dep.
	nCD := len(genders) * len(maritalStatus) * len(educations) * len(creditRatings) * len(depCountVocab)
	cdSK := make([]int64, nCD)
	cdG := make([]string, nCD)
	cdM := make([]string, nCD)
	cdE := make([]string, nCD)
	cdC := make([]string, nCD)
	cdD := make([]int64, nCD)
	i := 0
	for _, g := range genders {
		for _, ms := range maritalStatus {
			for _, ed := range educations {
				for _, cr := range creditRatings {
					for _, dep := range depCountVocab {
						cdSK[i] = int64(i + 1)
						cdG[i], cdM[i], cdE[i], cdC[i], cdD[i] = g, ms, ed, cr, dep
						i++
					}
				}
			}
		}
	}
	cdRel, err := relation.FromColumns("customer_demographics",
		relation.IntCol("cd_demo_sk", cdSK),
		relation.StringCol("cd_gender", cdG),
		relation.StringCol("cd_marital_status", cdM),
		relation.StringCol("cd_education", cdE),
		relation.StringCol("cd_credit_rating", cdC),
		relation.IntCol("cd_dep_count", cdD),
	)
	if err != nil {
		return nil, err
	}
	cdKey := func(row int) int64 {
		k := indexOf(genders, d.gender[row])
		k = k*len(maritalStatus) + indexOf(maritalStatus, d.marital[row])
		k = k*len(educations) + indexOf(educations, d.education[row])
		k = k*len(creditRatings) + indexOf(creditRatings, d.credit[row])
		k = k*len(depCountVocab) + int(d.depCount[row])
		return int64(k + 1)
	}

	// item: categories × classes × brands × colors × sizes.
	nIt := len(categories) * len(classes) * len(brands) * len(colors) * len(sizes)
	itSK := make([]int64, nIt)
	itCat := make([]string, nIt)
	itCl := make([]string, nIt)
	itBr := make([]string, nIt)
	itCo := make([]string, nIt)
	itSz := make([]string, nIt)
	i = 0
	for _, cat := range categories {
		for _, cl := range classes {
			for _, br := range brands {
				for _, co := range colors {
					for _, sz := range sizes {
						itSK[i] = int64(i + 1)
						itCat[i], itCl[i], itBr[i], itCo[i], itSz[i] = cat, cl, br, co, sz
						i++
					}
				}
			}
		}
	}
	itRel, err := relation.FromColumns("item",
		relation.IntCol("i_item_sk", itSK),
		relation.StringCol("i_category", itCat),
		relation.StringCol("i_class", itCl),
		relation.StringCol("i_brand", itBr),
		relation.StringCol("i_color", itCo),
		relation.StringCol("i_size", itSz),
	)
	if err != nil {
		return nil, err
	}
	itKey := func(row int) int64 {
		k := indexOf(categories, d.category[row])
		k = k*len(classes) + indexOf(classes, d.class[row])
		k = k*len(brands) + indexOf(brands, d.brand[row])
		k = k*len(colors) + indexOf(colors, d.color[row])
		k = k*len(sizes) + indexOf(sizes, d.size[row])
		return int64(k + 1)
	}

	// store: ids × states × counties × channels.
	nSt := storeIDsDomain * len(states) * len(countiesVocab) * len(channelsVocab)
	stSK := make([]int64, nSt)
	stID := make([]int64, nSt)
	stSt := make([]string, nSt)
	stCn := make([]string, nSt)
	stCh := make([]string, nSt)
	i = 0
	for id := 1; id <= storeIDsDomain; id++ {
		for _, st := range states {
			for _, cn := range countiesVocab {
				for _, ch := range channelsVocab {
					stSK[i] = int64(i + 1)
					stID[i] = int64(id)
					stSt[i], stCn[i], stCh[i] = st, cn, ch
					i++
				}
			}
		}
	}
	stRel, err := relation.FromColumns("store",
		relation.IntCol("s_store_sk", stSK),
		relation.IntCol("s_store_id", stID),
		relation.StringCol("s_state", stSt),
		relation.StringCol("s_county", stCn),
		relation.StringCol("s_channel", stCh),
	)
	if err != nil {
		return nil, err
	}
	stKey := func(row int) int64 {
		k := int(d.storeID[row]) - 1
		k = k*len(states) + indexOf(states, d.state[row])
		k = k*len(countiesVocab) + indexOf(countiesVocab, d.county[row])
		k = k*len(channelsVocab) + indexOf(channelsVocab, d.channel[row])
		return int64(k + 1)
	}

	// date_dim: years × quarters × weekdays × shifts.
	nDt := len(yearsVocab) * len(quartersVocab) * len(weekdaysVocab) * len(shiftsVocab)
	dtSK := make([]int64, nDt)
	dtYr := make([]int64, nDt)
	dtQ := make([]string, nDt)
	dtWd := make([]string, nDt)
	dtSh := make([]string, nDt)
	i = 0
	for _, yr := range yearsVocab {
		for _, q := range quartersVocab {
			for _, wd := range weekdaysVocab {
				for _, sh := range shiftsVocab {
					dtSK[i] = int64(i + 1)
					dtYr[i], dtQ[i], dtWd[i], dtSh[i] = yr, q, wd, sh
					i++
				}
			}
		}
	}
	dtRel, err := relation.FromColumns("date_dim",
		relation.IntCol("d_date_sk", dtSK),
		relation.IntCol("d_year", dtYr),
		relation.StringCol("d_quarter", dtQ),
		relation.StringCol("d_weekday", dtWd),
		relation.StringCol("d_shift", dtSh),
	)
	if err != nil {
		return nil, err
	}
	dtKey := func(row int) int64 {
		k := int(d.year[row] - yearsVocab[0])
		k = k*len(quartersVocab) + indexOf(quartersVocab, d.quarter[row])
		k = k*len(weekdaysVocab) + indexOf(weekdaysVocab, d.weekday[row])
		k = k*len(shiftsVocab) + indexOf(shiftsVocab, d.shift[row])
		return int64(k + 1)
	}

	cdFK := make([]int64, n)
	itFK := make([]int64, n)
	stFK := make([]int64, n)
	dtFK := make([]int64, n)
	for r := 0; r < n; r++ {
		cdFK[r] = cdKey(r)
		itFK[r] = itKey(r)
		stFK[r] = stKey(r)
		dtFK[r] = dtKey(r)
	}
	fact, err := relation.FromColumns("store_sales",
		relation.IntCol("ss_cdemo_sk", cdFK),
		relation.IntCol("ss_item_sk", itFK),
		relation.IntCol("ss_store_sk", stFK),
		relation.IntCol("ss_date_sk", dtFK),
		relation.StringCol("p_promo", d.promo),
		relation.IntCol("ss_quantity", d.quantity),
		relation.FloatCol("ss_list_price", d.listPrice),
		relation.FloatCol("ss_sales_price", d.salesPrice),
		relation.FloatCol("net_profit", d.profit),
	)
	if err != nil {
		return nil, err
	}
	return &Star{Fact: fact, Customer: cdRel, Item: itRel, Store: stRel, Date: dtRel}, nil
}

// Query renders the paper's TPC-DS aggregate template (Appendix A.8) over
// the first m grouping attributes:
//
//	SELECT <attrs>, avg(net_profit) AS val FROM store_sales
//	GROUP BY <attrs> HAVING count(*) > minCount ORDER BY val DESC
func Query(m, minCount int) (string, error) {
	return query(m, minCount, "store_sales")
}

// JoinQuery renders the same aggregate template over the star schema,
// joining the fact table to all four dimensions on their surrogate keys;
// its result is bit-identical to Query over the flat table.
func JoinQuery(m, minCount int) (string, error) {
	return query(m, minCount, "store_sales"+
		" JOIN customer_demographics ON store_sales.ss_cdemo_sk = customer_demographics.cd_demo_sk"+
		" JOIN item ON store_sales.ss_item_sk = item.i_item_sk"+
		" JOIN store ON store_sales.ss_store_sk = store.s_store_sk"+
		" JOIN date_dim ON store_sales.ss_date_sk = date_dim.d_date_sk")
}

func query(m, minCount int, from string) (string, error) {
	if m < 1 || m > len(GroupingAttrs) {
		return "", fmt.Errorf("tpcds: m = %d out of range [1, %d]", m, len(GroupingAttrs))
	}
	attrs := ""
	for i := 0; i < m; i++ {
		if i > 0 {
			attrs += ", "
		}
		attrs += GroupingAttrs[i]
	}
	q := "SELECT " + attrs + ", avg(net_profit) AS val FROM " + from + " GROUP BY " + attrs
	if minCount > 0 {
		q += fmt.Sprintf(" HAVING count(*) > %d", minCount)
	}
	q += " ORDER BY val DESC"
	return q, nil
}
