// Package tpcds generates a synthetic TPC-DS-like store_sales table, the
// scalability workload of Section 7.4 of the paper. The official TPC-DS
// generator is unavailable offline, so this package produces a 23-attribute
// sales fact table (customer demographics, store, item, date dimensions
// denormalized, plus a net_profit measure) whose aggregate query output
// sizes match the paper's setting (N ≈ 47,361 groups for the reported
// configuration).
package tpcds

import (
	"fmt"
	"math"
	"math/rand"

	"qagview/internal/relation"
)

// Config sizes the synthetic table.
type Config struct {
	Rows int
	Seed int64
}

// DefaultConfig generates 500,000 fact rows; the paper's store_sales has
// 2,880,404, but the summarization experiments depend only on the aggregate
// output size N, which the queries below control.
func DefaultConfig() Config { return Config{Rows: 500_000, Seed: 7} }

// GroupingAttrs lists grouping attributes in the order used when varying m.
var GroupingAttrs = []string{
	"cd_gender", "cd_marital_status", "cd_education", "i_category",
	"cd_credit_rating", "s_state", "d_quarter", "d_year",
	"i_class", "d_weekday",
}

var (
	genders        = []string{"M", "F"}
	maritalStatus  = []string{"S", "M", "D", "W", "U"}
	educations     = []string{"primary", "secondary", "college", "2yrdegree", "4yrdegree", "advanced", "unknown"}
	creditRatings  = []string{"low", "good", "highrisk", "unknown"}
	states         = []string{"TN", "GA", "SC", "NC", "AL", "KY", "VA", "FL", "TX", "OH"}
	categories     = []string{"books", "electronics", "home", "jewelry", "men", "music", "shoes", "sports", "toys", "women"}
	classes        = []string{"c01", "c02", "c03", "c04", "c05", "c06", "c07", "c08"}
	brands         = []string{"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9", "b10"}
	colors         = []string{"red", "blue", "green", "black", "white", "yellow"}
	sizes          = []string{"small", "medium", "large", "xl"}
	weekdaysVocab  = []string{"mon", "tue", "wed", "thu", "fri", "sat", "sun"}
	quartersVocab  = []string{"Q1", "Q2", "Q3", "Q4"}
	promosVocab    = []string{"none", "tv", "radio", "web", "mail"}
	countiesVocab  = []string{"county1", "county2", "county3", "county4", "county5"}
	shiftsVocab    = []string{"morning", "afternoon", "evening"}
	channelsVocab  = []string{"store", "kiosk"}
	depCountVocab  = []int64{0, 1, 2, 3, 4}
	storeIDsDomain = 12
)

// Generate builds the store_sales table deterministically from cfg.
func Generate(cfg Config) (*relation.Relation, error) {
	if cfg.Rows < 1 {
		return nil, fmt.Errorf("tpcds: non-positive row count %d", cfg.Rows)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows
	pick := func(vocab []string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[rng.Intn(len(vocab))]
		}
		return out
	}
	// Draw correlated columns row-wise for the planted profit structure.
	gender := make([]string, n)
	marital := make([]string, n)
	education := make([]string, n)
	credit := make([]string, n)
	category := make([]string, n)
	class := make([]string, n)
	state := make([]string, n)
	quarter := make([]string, n)
	yearCol := make([]int64, n)
	profit := make([]float64, n)
	quantity := make([]int64, n)
	listPrice := make([]float64, n)
	salesPrice := make([]float64, n)
	for i := 0; i < n; i++ {
		g := genders[rng.Intn(2)]
		ms := maritalStatus[rng.Intn(len(maritalStatus))]
		ed := educations[rng.Intn(len(educations))]
		cr := creditRatings[rng.Intn(len(creditRatings))]
		cat := categories[rng.Intn(len(categories))]
		cl := classes[rng.Intn(len(classes))]
		st := states[rng.Intn(len(states))]
		q := quartersVocab[rng.Intn(4)]
		year := 1998 + int64(rng.Intn(6))
		qty := int64(1 + rng.Intn(10))
		lp := 5 + rng.Float64()*95
		sp := lp * (0.5 + rng.Float64()*0.5)

		// Planted structure: electronics and jewelry bought by advanced-
		// degree, good-credit customers in Q4 are high-profit; books in Q1
		// for low-credit are loss leaders.
		p := (sp - lp*0.7) * float64(qty)
		if (cat == "electronics" || cat == "jewelry") && ed == "advanced" && cr == "good" {
			p += 40
		}
		if cat == "jewelry" && q == "Q4" {
			p += 25
		}
		if cat == "books" && cr == "low" {
			p -= 30
		}
		if st == "TN" || st == "GA" {
			p += 5
		}
		p += rng.NormFloat64() * 20
		p = math.Round(p*100) / 100

		gender[i], marital[i], education[i], credit[i] = g, ms, ed, cr
		category[i], class[i], state[i], quarter[i] = cat, cl, st, q
		yearCol[i], quantity[i], listPrice[i], salesPrice[i], profit[i] = year, qty, lp, sp, p
	}
	storeID := make([]int64, n)
	for i := range storeID {
		storeID[i] = int64(1 + rng.Intn(storeIDsDomain))
	}
	depCount := make([]int64, n)
	for i := range depCount {
		depCount[i] = depCountVocab[rng.Intn(len(depCountVocab))]
	}

	return relation.FromColumns("store_sales",
		relation.StringCol("cd_gender", gender),
		relation.StringCol("cd_marital_status", marital),
		relation.StringCol("cd_education", education),
		relation.StringCol("cd_credit_rating", credit),
		relation.IntCol("cd_dep_count", depCount),
		relation.StringCol("i_category", category),
		relation.StringCol("i_class", class),
		relation.StringCol("i_brand", pick(brands)),
		relation.StringCol("i_color", pick(colors)),
		relation.StringCol("i_size", pick(sizes)),
		relation.IntCol("s_store_id", storeID),
		relation.StringCol("s_state", state),
		relation.StringCol("s_county", pick(countiesVocab)),
		relation.IntCol("d_year", yearCol),
		relation.StringCol("d_quarter", quarter),
		relation.StringCol("d_weekday", pick(weekdaysVocab)),
		relation.StringCol("d_shift", pick(shiftsVocab)),
		relation.StringCol("p_promo", pick(promosVocab)),
		relation.StringCol("s_channel", pick(channelsVocab)),
		relation.IntCol("ss_quantity", quantity),
		relation.FloatCol("ss_list_price", listPrice),
		relation.FloatCol("ss_sales_price", salesPrice),
		relation.FloatCol("net_profit", profit),
	)
}

// Query renders the paper's TPC-DS aggregate template (Appendix A.8) over
// the first m grouping attributes:
//
//	SELECT <attrs>, avg(net_profit) AS val FROM store_sales
//	GROUP BY <attrs> HAVING count(*) > minCount ORDER BY val DESC
func Query(m, minCount int) (string, error) {
	if m < 1 || m > len(GroupingAttrs) {
		return "", fmt.Errorf("tpcds: m = %d out of range [1, %d]", m, len(GroupingAttrs))
	}
	attrs := ""
	for i := 0; i < m; i++ {
		if i > 0 {
			attrs += ", "
		}
		attrs += GroupingAttrs[i]
	}
	q := "SELECT " + attrs + ", avg(net_profit) AS val FROM store_sales GROUP BY " + attrs
	if minCount > 0 {
		q += fmt.Sprintf(" HAVING count(*) > %d", minCount)
	}
	q += " ORDER BY val DESC"
	return q, nil
}
