package tpcds

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"qagview/internal/engine"
	"qagview/internal/relation"
)

type catalog map[string]*relation.Relation

func (c catalog) Table(name string) (*relation.Relation, error) {
	r, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return r, nil
}

func TestGenerateShape(t *testing.T) {
	r, err := Generate(Config{Rows: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 5000 {
		t.Errorf("rows = %d", r.NumRows())
	}
	if r.NumCols() != 23 {
		t.Errorf("cols = %d, want 23 (paper's store_sales width)", r.NumCols())
	}
	if _, err := Generate(Config{Rows: 0}); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Rows: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Rows: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < a.NumCols(); col++ {
		for row := 0; row < a.NumRows(); row++ {
			if a.StringAt(col, row) != b.StringAt(col, row) {
				t.Fatalf("nondeterministic at (%d,%d)", col, row)
			}
		}
	}
}

func TestAggregateQueryRuns(t *testing.T) {
	r, err := Generate(Config{Rows: 50_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Query(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteSQL(catalog{"store_sales": r}, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() < 100 {
		t.Errorf("only %d groups from m=4 query", res.N())
	}
	for i := 1; i < res.N(); i++ {
		if res.Vals[i] > res.Vals[i-1] {
			t.Fatal("not sorted descending")
		}
	}
}

func TestPlantedProfitStructure(t *testing.T) {
	r, err := Generate(Config{Rows: 100_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteSQL(catalog{"store_sales": r}, `SELECT i_category, cd_education, cd_credit_rating, avg(net_profit) AS val
		FROM store_sales GROUP BY i_category, cd_education, cd_credit_rating
		HAVING count(*) > 50 ORDER BY val DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// The top group should reflect the planted high-profit stratum.
	top := res.Rows[0]
	if !(top[0] == "electronics" || top[0] == "jewelry") || top[1] != "advanced" || top[2] != "good" {
		t.Errorf("top group = %v, planted structure not dominant", top)
	}
	// Loss-leader books/low-credit should rank near the bottom.
	for i := 0; i < res.N()/4; i++ {
		if res.Rows[i][0] == "books" && res.Rows[i][2] == "low" {
			t.Errorf("books/low-credit in top quartile at rank %d", i+1)
		}
	}
}

func TestQueryTemplate(t *testing.T) {
	q, err := Query(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"cd_gender, cd_marital_status, cd_education", "avg(net_profit)", "HAVING count(*) > 10"} {
		if !strings.Contains(q, frag) {
			t.Errorf("query missing %q: %s", frag, q)
		}
	}
	if _, err := Query(0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Query(99, 1); err == nil {
		t.Error("huge m accepted")
	}
}

// TestStarJoinMatchesFlat pins the star-schema loader property: the
// four-dimension join over the base tables reproduces the flat store_sales
// aggregates bit for bit, on the reference, hash, and generic join paths.
func TestStarJoinMatchesFlat(t *testing.T) {
	cfg := Config{Rows: 400, Seed: 5}
	star, err := GenerateStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flatCat := catalog{"store_sales": flat}
	starCat := catalog{}
	for _, r := range star.Tables() {
		starCat[r.Name()] = r
	}
	for _, m := range []int{3, 6} {
		fq, err := Query(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		jq, err := JoinQuery(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.ExecuteSQL(flatCat, fq)
		if err != nil {
			t.Fatal(err)
		}
		if want.N() == 0 {
			t.Fatalf("flat query m=%d returned no groups", m)
		}
		for i, opts := range [][]engine.ExecOption{
			{engine.ExecReference()},
			{engine.ExecParallelism(1)},
			{engine.ExecParallelism(8)},
			{engine.ExecParallelism(8), engine.ExecStringKeys()},
			{engine.ExecParallelism(2), engine.ExecGenericJoin()},
		} {
			got, err := engine.ExecuteSQL(starCat, jq, opts...)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("m=%d case=%d", m, i)
			if !reflect.DeepEqual(want.GroupBy, got.GroupBy) || want.ValName != got.ValName {
				t.Fatalf("%s: header mismatch", label)
			}
			if !reflect.DeepEqual(want.Rows, got.Rows) {
				t.Fatalf("%s: rows mismatch:\nwant %v\ngot  %v", label, want.Rows, got.Rows)
			}
			if len(want.Vals) != len(got.Vals) {
				t.Fatalf("%s: %d vals, want %d", label, len(got.Vals), len(want.Vals))
			}
			for k := range want.Vals {
				if math.Float64bits(want.Vals[k]) != math.Float64bits(got.Vals[k]) {
					t.Fatalf("%s: val[%d] bits differ: %v vs %v", label, k, want.Vals[k], got.Vals[k])
				}
			}
		}
	}
}

// TestStarSurrogateKeys checks the fact's surrogate keys land on dimension
// rows carrying exactly the drawn attribute values.
func TestStarSurrogateKeys(t *testing.T) {
	cfg := Config{Rows: 200, Seed: 9}
	star, err := GenerateStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sk, _ := star.Fact.ColumnByName("ss_item_sk")
	cat, _ := star.Item.ColumnByName("i_category")
	want, _ := flat.ColumnByName("i_category")
	for i := range sk.Int {
		if got := cat.Str[sk.Int[i]-1]; got != want.Str[i] {
			t.Fatalf("row %d: item sk %d has category %q, flat has %q", i, sk.Int[i], got, want.Str[i])
		}
	}
}
