package tpcds

import (
	"fmt"
	"strings"
	"testing"

	"qagview/internal/engine"
	"qagview/internal/relation"
)

type catalog map[string]*relation.Relation

func (c catalog) Table(name string) (*relation.Relation, error) {
	r, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return r, nil
}

func TestGenerateShape(t *testing.T) {
	r, err := Generate(Config{Rows: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 5000 {
		t.Errorf("rows = %d", r.NumRows())
	}
	if r.NumCols() != 23 {
		t.Errorf("cols = %d, want 23 (paper's store_sales width)", r.NumCols())
	}
	if _, err := Generate(Config{Rows: 0}); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Rows: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Rows: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < a.NumCols(); col++ {
		for row := 0; row < a.NumRows(); row++ {
			if a.StringAt(col, row) != b.StringAt(col, row) {
				t.Fatalf("nondeterministic at (%d,%d)", col, row)
			}
		}
	}
}

func TestAggregateQueryRuns(t *testing.T) {
	r, err := Generate(Config{Rows: 50_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Query(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteSQL(catalog{"store_sales": r}, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() < 100 {
		t.Errorf("only %d groups from m=4 query", res.N())
	}
	for i := 1; i < res.N(); i++ {
		if res.Vals[i] > res.Vals[i-1] {
			t.Fatal("not sorted descending")
		}
	}
}

func TestPlantedProfitStructure(t *testing.T) {
	r, err := Generate(Config{Rows: 100_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteSQL(catalog{"store_sales": r}, `SELECT i_category, cd_education, cd_credit_rating, avg(net_profit) AS val
		FROM store_sales GROUP BY i_category, cd_education, cd_credit_rating
		HAVING count(*) > 50 ORDER BY val DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// The top group should reflect the planted high-profit stratum.
	top := res.Rows[0]
	if !(top[0] == "electronics" || top[0] == "jewelry") || top[1] != "advanced" || top[2] != "good" {
		t.Errorf("top group = %v, planted structure not dominant", top)
	}
	// Loss-leader books/low-credit should rank near the bottom.
	for i := 0; i < res.N()/4; i++ {
		if res.Rows[i][0] == "books" && res.Rows[i][2] == "low" {
			t.Errorf("books/low-credit in top quartile at rank %d", i+1)
		}
	}
}

func TestQueryTemplate(t *testing.T) {
	q, err := Query(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"cd_gender, cd_marital_status, cd_education", "avg(net_profit)", "HAVING count(*) > 10"} {
		if !strings.Contains(q, frag) {
			t.Errorf("query missing %q: %s", frag, q)
		}
	}
	if _, err := Query(0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Query(99, 1); err == nil {
		t.Error("huge m accepted")
	}
}
