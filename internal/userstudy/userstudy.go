// Package userstudy simulates the paper's user study (Section 8). Human
// subjects are unavailable here, so subjects are modeled programmatically:
// a subject classifies hidden-value tuples into top / high / low using the
// rule set they were shown, with (a) a memorability model in which each rule
// is recalled with probability decaying exponentially in its complexity —
// the mechanism the paper identifies behind decision trees' memory-only
// collapse — and (b) a time model charging for each rule examined, weighted
// by its complexity. The harness reproduces the structure of Table 1:
// three sections (patterns-only, memory-only, patterns+members) per task
// group, with T-accuracy and TH-accuracy.
package userstudy

import (
	"fmt"
	"math"
	"math/rand"

	"qagview/internal/dtree"
	"qagview/internal/lattice"
	"qagview/internal/summarize"
)

// Category is the classification target of each question.
type Category int

// The three categories of Section 8.1.
const (
	CatTop Category = iota
	CatHigh
	CatLow
)

// Section is one question block of a task group.
type Section int

// The three sections of Section 8.1.
const (
	PatternsOnly Section = iota
	MemoryOnly
	PatternsMembers
)

// String names the section as in Table 1.
func (s Section) String() string {
	switch s {
	case PatternsOnly:
		return "Patterns-only"
	case MemoryOnly:
		return "Memory-only"
	case PatternsMembers:
		return "Patterns+members"
	default:
		return fmt.Sprintf("Section(%d)", int(s))
	}
}

// Rule is one displayed cluster/pattern from the subject's point of view.
type Rule struct {
	// Matches reports whether the rule's pattern covers the tuple.
	Matches func(t []int32) bool
	// Complexity drives the memorability and time models (non-* literals for
	// our patterns; conditions with negation surcharge for decision trees).
	Complexity int
	// MeanVal is the displayed average value of the rule's members.
	MeanVal float64
	// Members lists covered tuple indices (used in the patterns+members
	// section); nil when membership is not displayed.
	Members []int32
}

// RuleSet is what a subject works with during one task group.
type RuleSet struct {
	Name  string
	Rules []Rule
}

// FromSolution converts the paper's cluster output into a subject-facing
// rule set.
func FromSolution(ix *lattice.Index, sol *summarize.Solution) RuleSet {
	rs := RuleSet{Name: "our method"}
	for _, c := range sol.Clusters {
		pat := c.Pat
		rs.Rules = append(rs.Rules, Rule{
			Matches:    func(t []int32) bool { return pat.CoversTuple(t) },
			Complexity: ix.Space.M() - pat.Level(),
			MeanVal:    c.Avg(),
			Members:    c.Cov,
		})
	}
	return rs
}

// FromDecisionTree converts the positive leaves of the adapted decision tree
// into a rule set. Members are computed against the space.
func FromDecisionTree(space *lattice.Space, tree *dtree.Tree) RuleSet {
	rs := RuleSet{Name: "decision tree"}
	for _, r := range tree.PositiveRules() {
		r := r
		var members []int32
		for ti, tup := range space.Tuples {
			if r.Matches(tup) {
				members = append(members, int32(ti))
			}
		}
		rs.Rules = append(rs.Rules, Rule{
			Matches:    func(t []int32) bool { return r.Matches(t) },
			Complexity: r.Complexity(),
			MeanVal:    r.MeanVal,
			Members:    members,
		})
	}
	return rs
}

// Config parameterizes the simulation.
type Config struct {
	// Subjects is the number of simulated participants (16 in the paper).
	Subjects int
	// Questions per section (the paper uses 6/6/8).
	Questions int
	// Beta is the memory-decay rate: recall probability = exp(-Beta *
	// complexity).
	Beta float64
	// Noise is the std-dev of the subject's value-estimation error, in value
	// units.
	Noise float64
	// Seed makes the simulation reproducible.
	Seed int64
}

// DefaultConfig mirrors the paper's study shape.
func DefaultConfig() Config {
	return Config{Subjects: 16, Questions: 6, Beta: 0.22, Noise: 0.25, Seed: 1}
}

// Outcome aggregates one section's metrics over subjects, as one cell block
// of Table 1.
type Outcome struct {
	TimeMean, TimeStd float64 // seconds per question
	TAcc, TAccStd     float64
	THAcc, THAccStd   float64
}

// Report maps sections to outcomes for one rule set.
type Report map[Section]Outcome

// GroundTruth computes the category of each tuple: top if rank < L, high if
// value >= the overall average, low otherwise (Section 8.1).
func GroundTruth(space *lattice.Space, L int) []Category {
	overall := 0.0
	for _, v := range space.Vals {
		overall += v
	}
	overall /= float64(space.N())
	cats := make([]Category, space.N())
	for i := range cats {
		switch {
		case i < L:
			cats[i] = CatTop
		case space.Vals[i] >= overall:
			cats[i] = CatHigh
		default:
			cats[i] = CatLow
		}
	}
	return cats
}

// Simulate runs the study for one rule set and returns the per-section
// outcomes.
func Simulate(space *lattice.Space, L int, rs RuleSet, cfg Config) (Report, error) {
	if cfg.Subjects < 1 || cfg.Questions < 1 {
		return nil, fmt.Errorf("userstudy: non-positive subjects/questions in %+v", cfg)
	}
	if L < 1 || L > space.N() {
		return nil, fmt.Errorf("userstudy: L = %d out of range [1, %d]", L, space.N())
	}
	if len(rs.Rules) == 0 {
		return nil, fmt.Errorf("userstudy: empty rule set")
	}
	truth := GroundTruth(space, L)
	// The top-value threshold subjects calibrate against: the L-th value.
	topThreshold := space.Vals[L-1]
	overall := 0.0
	for _, v := range space.Vals {
		overall += v
	}
	overall /= float64(space.N())

	rep := Report{}
	for _, sec := range []Section{PatternsOnly, MemoryOnly, PatternsMembers} {
		var times, taccs, thaccs []float64
		for subj := 0; subj < cfg.Subjects; subj++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(subj)*7919 + int64(sec)*104729))
			qs := sampleQuestions(rng, truth, cfg.Questions)
			tSum := 0.0
			tOK, thOK := 0, 0
			for _, q := range qs {
				guess, secs := answer(rng, space, rs, sec, q, topThreshold, overall, cfg)
				tSum += secs
				want := truth[q]
				if (guess == CatTop) == (want == CatTop) {
					tOK++
				}
				if (guess != CatLow) == (want != CatLow) {
					thOK++
				}
			}
			times = append(times, tSum/float64(len(qs)))
			taccs = append(taccs, float64(tOK)/float64(len(qs)))
			thaccs = append(thaccs, float64(thOK)/float64(len(qs)))
		}
		rep[sec] = Outcome{
			TimeMean: mean(times), TimeStd: std(times),
			TAcc: mean(taccs), TAccStd: std(taccs),
			THAcc: mean(thaccs), THAccStd: std(thaccs),
		}
	}
	return rep, nil
}

// sampleQuestions draws questions balanced across categories, as the study
// does ("chosen randomly and evenly across the top, high, and low
// categories").
func sampleQuestions(rng *rand.Rand, truth []Category, n int) []int {
	byCat := map[Category][]int{}
	for i, c := range truth {
		byCat[c] = append(byCat[c], i)
	}
	var qs []int
	cats := []Category{CatTop, CatHigh, CatLow}
	for len(qs) < n {
		c := cats[len(qs)%3]
		pool := byCat[c]
		if len(pool) == 0 {
			pool = byCat[CatLow]
		}
		if len(pool) == 0 {
			pool = byCat[CatTop]
		}
		qs = append(qs, pool[rng.Intn(len(pool))])
	}
	return qs
}

// answer simulates one subject answering one question under a section's
// information regime, returning the guess and the time taken in seconds.
func answer(rng *rand.Rand, space *lattice.Space, rs RuleSet, sec Section, q int,
	topThreshold, overall float64, cfg Config) (Category, float64) {
	tup := space.Tuples[q]

	// Which rules can the subject consult?
	avail := rs.Rules
	if sec == MemoryOnly {
		var recalled []Rule
		for _, r := range avail {
			if rng.Float64() < math.Exp(-cfg.Beta*float64(r.Complexity)) {
				recalled = append(recalled, r)
			}
		}
		avail = recalled
	}

	// Time model: a base cost plus a per-rule examination cost scaled by
	// complexity; membership inspection adds a per-member skim cost.
	secs := 3.0 + rng.NormFloat64()*0.5
	perRule := 1.6
	if sec == MemoryOnly {
		perRule = 0.7 // recalling is faster than reading
	}
	for _, r := range avail {
		secs += perRule * (0.5 + 0.25*float64(r.Complexity)) * (0.8 + rng.Float64()*0.4)
	}

	// Membership lookup is near-authoritative.
	if sec == PatternsMembers {
		for _, r := range avail {
			secs += 0.02 * float64(len(r.Members))
			for _, m := range r.Members {
				if int(m) == q {
					// Subject sees the tuple listed with its neighbors and
					// classifies almost perfectly.
					if rng.Float64() < 0.96 {
						return truthCategory(space, q, topThreshold, overall), secs
					}
					return perturb(rng, truthCategory(space, q, topThreshold, overall)), secs
				}
			}
		}
		// Not a member of any shown cluster: the subject reasons it is
		// outside the summarized high region.
		if rng.Float64() < 0.85 {
			return truthIfNotCovered(space, q, overall), secs
		}
		return CatLow, secs
	}

	// Pattern-based estimation: use the best matching rule's displayed mean.
	est := math.Inf(-1)
	matched := false
	for _, r := range avail {
		if r.Matches(tup) {
			matched = true
			if r.MeanVal > est {
				est = r.MeanVal
			}
		}
	}
	if !matched {
		// No matching rule: guess from the prior that uncovered tuples are
		// usually not top; mistakes happen.
		roll := rng.Float64()
		switch {
		case roll < 0.62:
			return CatLow, secs
		case roll < 0.9:
			return CatHigh, secs
		default:
			return CatTop, secs
		}
	}
	est += rng.NormFloat64() * cfg.Noise
	switch {
	case est >= topThreshold:
		return CatTop, secs
	case est >= overall:
		return CatHigh, secs
	default:
		return CatLow, secs
	}
}

func truthCategory(space *lattice.Space, q int, topThreshold, overall float64) Category {
	switch {
	case space.Vals[q] >= topThreshold:
		return CatTop
	case space.Vals[q] >= overall:
		return CatHigh
	default:
		return CatLow
	}
}

// truthIfNotCovered models the subject's good but imperfect inference for
// tuples outside all clusters: they are usually high-or-low, not top.
func truthIfNotCovered(space *lattice.Space, q int, overall float64) Category {
	if space.Vals[q] >= overall {
		return CatHigh
	}
	return CatLow
}

func perturb(rng *rand.Rand, c Category) Category {
	if rng.Float64() < 0.5 && c != CatLow {
		return c + 1
	}
	if c != CatTop {
		return c - 1
	}
	return CatHigh
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func std(xs []float64) float64 {
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}
