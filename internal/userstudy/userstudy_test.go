package userstudy

import (
	"fmt"
	"math/rand"
	"testing"

	"qagview/internal/dtree"
	"qagview/internal/lattice"
	"qagview/internal/summarize"
)

func studySpace(t *testing.T) (*lattice.Space, *lattice.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	rows := make([][]string, 0, 120)
	vals := make([]float64, 0, 120)
	seen := map[string]bool{}
	for len(rows) < 120 {
		row := make([]string, 4)
		key := ""
		boost := 0.0
		for j := range row {
			v := rng.Intn(4)
			row[j] = fmt.Sprintf("v%d_%d", j, v)
			key += row[j]
			if v == 0 && j < 2 {
				boost++
			}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, row)
		vals = append(vals, rng.Float64()+boost)
	}
	s, err := lattice.NewSpace([]string{"a", "b", "c", "d"}, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := lattice.BuildIndex(s, 30)
	if err != nil {
		t.Fatal(err)
	}
	return s, ix
}

func ruleSets(t *testing.T) (*lattice.Space, RuleSet, RuleSet) {
	t.Helper()
	s, ix := studySpace(t)
	sol, err := summarize.Hybrid(ix, summarize.Params{K: 8, L: 30, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	ours := FromSolution(ix, sol)

	labels := make([]bool, s.N())
	for i := range labels {
		labels[i] = i < 30
	}
	tuples := make([][]int32, s.N())
	for i := range tuples {
		tuples[i] = s.Tuples[i]
	}
	tree, err := dtree.TuneK(tuples, labels, s.Vals, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	dt := FromDecisionTree(s, tree)
	if len(dt.Rules) == 0 {
		t.Fatal("decision tree produced no positive rules")
	}
	return s, ours, dt
}

func TestGroundTruthPartition(t *testing.T) {
	s, _ := studySpace(t)
	cats := GroundTruth(s, 30)
	nTop := 0
	for i, c := range cats {
		if i < 30 && c != CatTop {
			t.Fatalf("rank %d not top", i)
		}
		if c == CatTop {
			nTop++
		}
	}
	if nTop != 30 {
		t.Errorf("top count = %d", nTop)
	}
	// Highs have value >= overall mean, lows below.
	overall := 0.0
	for _, v := range s.Vals {
		overall += v
	}
	overall /= float64(s.N())
	for i, c := range cats {
		if i < 30 {
			continue
		}
		if (s.Vals[i] >= overall) != (c == CatHigh) {
			t.Fatalf("rank %d categorized %v with val %v vs overall %v", i, c, s.Vals[i], overall)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	s, ours, _ := ruleSets(t)
	if _, err := Simulate(s, 30, ours, Config{Subjects: 0, Questions: 5, Seed: 1}); err == nil {
		t.Error("0 subjects accepted")
	}
	if _, err := Simulate(s, 0, ours, DefaultConfig()); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := Simulate(s, 30, RuleSet{}, DefaultConfig()); err == nil {
		t.Error("empty rules accepted")
	}
}

func TestSimulateIsDeterministic(t *testing.T) {
	s, ours, _ := ruleSets(t)
	a, err := Simulate(s, 30, ours, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(s, 30, ours, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for sec := range a {
		if a[sec] != b[sec] {
			t.Fatalf("section %v nondeterministic: %+v vs %+v", sec, a[sec], b[sec])
		}
	}
}

// TestTable1Shape verifies the qualitative findings of Table 1 hold in the
// simulation: (1) patterns+members is the most accurate section; (2) our
// method's memory-only accuracy degrades little relative to patterns-only,
// while the decision tree's drops more (simple patterns are memorable);
// (3) accuracies are in [0, 1] and times positive.
func TestTable1Shape(t *testing.T) {
	s, ours, dt := ruleSets(t)
	cfg := DefaultConfig()
	cfg.Subjects = 24
	ourRep, err := Simulate(s, 30, ours, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dtRep, err := Simulate(s, 30, dt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]Report{"ours": ourRep, "dtree": dtRep} {
		for sec, o := range rep {
			if o.TAcc < 0 || o.TAcc > 1 || o.THAcc < 0 || o.THAcc > 1 {
				t.Errorf("%s %v: accuracy out of range: %+v", name, sec, o)
			}
			if o.TimeMean <= 0 {
				t.Errorf("%s %v: non-positive time", name, sec)
			}
		}
		if rep[PatternsMembers].THAcc < rep[MemoryOnly].THAcc-0.05 {
			t.Errorf("%s: patterns+members (%v) should dominate memory-only (%v)",
				name, rep[PatternsMembers].THAcc, rep[MemoryOnly].THAcc)
		}
	}
	// Memory degradation: ours should lose less TH-accuracy than dtree
	// between patterns-only and memory-only.
	ourDrop := ourRep[PatternsOnly].THAcc - ourRep[MemoryOnly].THAcc
	dtDrop := dtRep[PatternsOnly].THAcc - dtRep[MemoryOnly].THAcc
	if ourDrop > dtDrop+0.05 {
		t.Errorf("our patterns degraded more than decision trees in memory: %v vs %v", ourDrop, dtDrop)
	}
}

func TestComplexityDrivesMemoryGap(t *testing.T) {
	// Construct two synthetic rule sets over the same space: simple (1-cond)
	// rules and complex (6-cond) rules with identical coverage behaviour.
	s, _ := studySpace(t)
	mk := func(complexity int) RuleSet {
		rs := RuleSet{Name: fmt.Sprintf("c%d", complexity)}
		for start := 0; start < 8; start++ {
			start := start
			rs.Rules = append(rs.Rules, Rule{
				Matches:    func(t []int32) bool { return t[0] == int32(start%3) },
				Complexity: complexity,
				MeanVal:    s.Vals[start],
			})
		}
		return rs
	}
	cfg := DefaultConfig()
	cfg.Subjects = 30
	simple, err := Simulate(s, 30, mk(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	complexR, err := Simulate(s, 30, mk(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Complex rules must cost more time when visible.
	if complexR[PatternsOnly].TimeMean <= simple[PatternsOnly].TimeMean {
		t.Errorf("complex rules not slower: %v vs %v",
			complexR[PatternsOnly].TimeMean, simple[PatternsOnly].TimeMean)
	}
}

func TestSectionString(t *testing.T) {
	if PatternsOnly.String() != "Patterns-only" || MemoryOnly.String() != "Memory-only" ||
		PatternsMembers.String() != "Patterns+members" {
		t.Error("section names wrong")
	}
}
