package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record is one logged mutation, keyed by table and the data generation the
// mutation produced. Op and Data are opaque to the log; the serving layer
// defines them (table create, row append).
type Record struct {
	Op    byte
	Table string
	Gen   uint64
	Data  []byte
}

// Frame layout: an 8-byte header — uint32 payload length, uint32 CRC32-IEEE
// of the payload — followed by the payload:
//
//	[1]  op
//	[8]  generation, little-endian
//	[4]  table-name length, little-endian
//	[..] table name
//	[..] data
//
// A frame is torn when the file ends before its declared payload does (the
// write was cut mid-record); it is corrupt when all its bytes are present
// but the CRC disagrees. Replay truncates a torn final frame and fail-stops
// on corruption (see scanSegment).
const frameHeaderSize = 8

// MaxRecordBytes bounds one record's payload; a declared length beyond it
// is treated as corruption (or a torn tail, when the bytes from the frame
// on are all zero — a preallocated-and-never-written region).
const MaxRecordBytes = 256 << 20

func payloadSize(r Record) int {
	return 1 + 8 + 4 + len(r.Table) + len(r.Data)
}

// appendFrame encodes r as a framed record at the end of dst.
func appendFrame(dst []byte, r Record) []byte {
	n := payloadSize(r)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize+n)...)
	payload := dst[start+frameHeaderSize:]
	payload[0] = r.Op
	binary.LittleEndian.PutUint64(payload[1:], r.Gen)
	binary.LittleEndian.PutUint32(payload[9:], uint32(len(r.Table)))
	copy(payload[13:], r.Table)
	copy(payload[13+len(r.Table):], r.Data)
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// decodePayload parses a checksum-verified payload back into a Record. The
// returned Record's Table and Data alias the input.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 13 {
		return Record{}, fmt.Errorf("payload too short: %d bytes", len(p))
	}
	tn := binary.LittleEndian.Uint32(p[9:])
	if int(tn) > len(p)-13 {
		return Record{}, fmt.Errorf("table-name length %d exceeds payload", tn)
	}
	return Record{
		Op:    p[0],
		Gen:   binary.LittleEndian.Uint64(p[1:]),
		Table: string(p[13 : 13+tn]),
		Data:  p[13+tn:],
	}, nil
}
