package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ReplayInfo reports what Open found and repaired.
type ReplayInfo struct {
	// Segments is the number of pre-existing segment files scanned.
	Segments int
	// Records is the number of records replayed.
	Records int
	// TruncatedBytes counts torn-tail bytes cut from the final segment (a
	// record the crash interrupted mid-write; it was never acknowledged).
	TruncatedBytes int64
	// SizeBytes is the on-disk byte total after repair.
	SizeBytes int64
}

// Open replays every record in dir through fn, in append order, repairs the
// final segment's torn tail if the last crash left one, and returns a Log
// appending to the end of the repaired tail.
//
// Corruption semantics are fail-stop: a record whose bytes are all present
// but whose CRC disagrees is a storage fault, not a crash artifact — Open
// returns an error rather than skipping it, because every later record may
// depend on the lost one. Only an *incomplete* final record (the file ends
// before the declared payload does, or the tail is all zeroes) is a torn
// write, and only in the final segment; a torn record in a sealed segment
// is corruption too.
//
// fn must be side-effect-safe against a later Open error only in the sense
// the caller defines; Open itself stops at the first fn error.
func Open(dir string, fn func(Record) error) (*Log, *ReplayInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	paths, seqs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	info := &ReplayInfo{Segments: len(paths)}
	for i, p := range paths {
		last := i == len(paths)-1
		valid, n, size, err := scanSegment(p, last, fn)
		if err != nil {
			return nil, nil, err
		}
		info.Records += n
		if valid < size {
			if err := os.Truncate(p, valid); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", p, err)
			}
			info.TruncatedBytes += size - valid
		}
		info.SizeBytes += valid
	}

	l := &Log{dir: dir}
	if len(paths) == 0 {
		l.seq = 1
		f, err := os.OpenFile(filepath.Join(dir, segName(l.seq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, err
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f = f
	} else {
		l.seq = seqs[len(seqs)-1]
		f, err := os.OpenFile(paths[len(paths)-1], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		l.f = f
	}
	l.size = info.SizeBytes
	return l, info, nil
}

// Replay scans dir's records through fn without opening a log for appends
// and without repairing anything (read-only inspection).
func Replay(dir string, fn func(Record) error) (*ReplayInfo, error) {
	paths, _, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return &ReplayInfo{}, nil
		}
		return nil, err
	}
	info := &ReplayInfo{Segments: len(paths)}
	for i, p := range paths {
		valid, n, size, err := scanSegment(p, i == len(paths)-1, fn)
		if err != nil {
			return nil, err
		}
		info.Records += n
		info.TruncatedBytes += size - valid
		info.SizeBytes += valid
	}
	return info, nil
}

// scanSegment replays one segment, returning the offset of the last valid
// frame boundary, the record count, and the file size. A torn tail is
// reported via valid < size; corruption is an error.
func scanSegment(path string, last bool, fn func(Record) error) (valid int64, n int, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	size = int64(len(data))
	off := 0
	torn := func(reason string) (int64, int, int64, error) {
		if !last {
			return 0, 0, 0, fmt.Errorf("wal: %s: %s at offset %d in a sealed segment — corruption, not a crash tail", path, reason, off)
		}
		return int64(off), n, size, nil
	}
	for off < len(data) {
		rem := data[off:]
		if len(rem) < frameHeaderSize {
			return torn("incomplete frame header")
		}
		ln := binary.LittleEndian.Uint32(rem)
		crc := binary.LittleEndian.Uint32(rem[4:])
		if ln == 0 || ln > MaxRecordBytes {
			if allZero(rem) {
				return torn("zero tail")
			}
			return 0, 0, 0, fmt.Errorf("wal: %s: implausible record length %d at offset %d: corrupt log (refusing to skip records)", path, ln, off)
		}
		if frameHeaderSize+int(ln) > len(rem) {
			return torn(fmt.Sprintf("record of %d bytes cut off by end of file", ln))
		}
		payload := rem[frameHeaderSize : frameHeaderSize+int(ln)]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return 0, 0, 0, fmt.Errorf("wal: %s: checksum mismatch at offset %d (stored %08x, computed %08x): corrupt log (refusing to skip records)", path, off, crc, got)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("wal: %s: undecodable record at offset %d: %w", path, off, err)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return 0, 0, 0, fmt.Errorf("wal: %s: applying record at offset %d: %w", path, off, err)
			}
		}
		off += frameHeaderSize + int(ln)
		n++
	}
	return int64(off), n, size, nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
