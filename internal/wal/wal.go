// Package wal implements the write-ahead log behind qagviewd's durable live
// tables: a directory of length-prefixed, CRC32-checksummed segment files
// with group commit — concurrent appends share one fsync — torn-tail
// truncation on replay, and checkpoint-driven segment rotation and pruning.
//
// Durability contract: Append (or the wait function returned by Stage)
// returns nil only after the record's batch has been fsynced to the current
// segment. A crash at any instant loses at most the records whose appends
// had not yet returned — never an acknowledged one, and never a prefix gap:
// records become durable in exactly the order they were staged.
//
// Fail-stop: a failed write or fsync marks the log broken and every
// subsequent append fails immediately. After a failed fsync the kernel may
// have dropped arbitrary dirty pages, so "retry and hope" would turn a
// reported error into silent loss; the process must restart and recover.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"qagview/internal/faultinject"
)

const (
	segPrefix = "wal-"
	segSuffix = ".log"
	// fsyncSampleCap bounds the fsync-latency reservoir (quantiles over the
	// most recent samples, O(1) memory under sustained traffic).
	fsyncSampleCap = 512
)

// Log is an append-only record log over numbered segment files. All methods
// are goroutine-safe.
type Log struct {
	dir string

	// ioMu serializes file operations (batch commits, rotation); mu guards
	// the staging state and is never held across I/O, so appends stage — and
	// pile into the next group commit — while an fsync is in flight.
	ioMu sync.Mutex
	mu   sync.Mutex

	f        *os.File // current segment (swapped under ioMu+mu)
	seq      uint64   // current segment sequence number
	pending  []byte   // staged frames awaiting the next commit
	waiters  []chan error
	flushing bool
	broken   error // sticky first failure; all later appends return it

	// stats (under mu)
	appends int64
	batches int64
	fsyncs  int64
	bytes   int64 // bytes appended this process
	size    int64 // on-disk bytes across live segments
	fsyncMs []float64
	fsyncAt int
}

// Stats is a point-in-time snapshot of the log's counters for /metrics.
type Stats struct {
	Appends    int64   `json:"appends"`
	Batches    int64   `json:"batches"`
	Fsyncs     int64   `json:"fsyncs"`
	Bytes      int64   `json:"bytes"`
	SizeBytes  int64   `json:"size_bytes"`
	FsyncP50Ms float64 `json:"fsync_p50_ms"`
	FsyncP99Ms float64 `json:"fsync_p99_ms"`
	Broken     bool    `json:"broken"`
}

// segName renders a segment filename; the fixed-width sequence keeps
// lexicographic order equal to numeric order for directory listings.
func segName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// segSeq parses a segment filename, reporting ok=false for foreign files.
func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	digits := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(digits) == 0 {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the directory's segment paths in sequence order.
func listSegments(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type seg struct {
		path string
		seq  uint64
	}
	var segs []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := segSeq(e.Name()); ok {
			segs = append(segs, seg{filepath.Join(dir, e.Name()), seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	paths := make([]string, len(segs))
	seqs := make([]uint64, len(segs))
	for i, s := range segs {
		paths[i] = s.path
		seqs[i] = s.seq
	}
	return paths, seqs, nil
}

// syncDir fsyncs the directory so segment creations, renames, and removals
// survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Stage appends the record to the in-memory commit buffer and returns a
// wait function that blocks until the record's batch is durable (or fails).
// Staging is cheap and non-blocking — callers that must order records
// against other state may stage under their own lock and wait outside it.
// Records staged in sequence become durable in the same sequence.
func (l *Log) Stage(rec Record) func() error {
	frame := appendFrame(nil, rec)
	ch := make(chan error, 1)
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return func() error { return err }
	}
	l.pending = append(l.pending, frame...)
	l.waiters = append(l.waiters, ch)
	l.appends++
	l.bytes += int64(len(frame))
	l.size += int64(len(frame))
	start := !l.flushing
	if start {
		l.flushing = true
	}
	l.mu.Unlock()
	faultinject.Crash(faultinject.CrashWALAppendStaged)
	if start {
		go l.flushLoop()
	}
	return func() error { return <-ch }
}

// Append stages the record and waits for it to be durable.
func (l *Log) Append(rec Record) error { return l.Stage(rec)() }

// Sync waits until everything staged before the call is durable (graceful
// drain). It returns the sticky error if the log is broken.
func (l *Log) Sync() error {
	ch := make(chan error, 1)
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return err
	}
	if !l.flushing && len(l.pending) == 0 {
		l.mu.Unlock()
		return nil
	}
	l.waiters = append(l.waiters, ch)
	start := !l.flushing
	if start {
		l.flushing = true
	}
	l.mu.Unlock()
	if start {
		go l.flushLoop()
	}
	return <-ch
}

// flushLoop drains the staging buffer in batches: each iteration takes
// everything staged so far, writes it with one write call, and fsyncs once
// — the group commit. It exits when the buffer is empty.
func (l *Log) flushLoop() {
	for {
		l.ioMu.Lock()
		l.mu.Lock()
		if len(l.pending) == 0 && len(l.waiters) == 0 {
			l.flushing = false
			l.mu.Unlock()
			l.ioMu.Unlock()
			return
		}
		buf := l.pending
		ws := l.waiters
		l.pending = nil
		l.waiters = nil
		f := l.f
		l.mu.Unlock()
		err := l.commit(f, buf)
		l.ioMu.Unlock()
		if err != nil {
			l.mu.Lock()
			if l.broken == nil {
				l.broken = err
			}
			l.mu.Unlock()
		}
		for _, ch := range ws {
			ch <- err
		}
	}
}

// commit writes one batch and makes it durable with a single fsync.
func (l *Log) commit(f *os.File, buf []byte) error {
	if len(buf) > 0 {
		if err := faultinject.Err(faultinject.ErrWALWrite); err != nil {
			if faultinject.ShortWrite(faultinject.ErrWALWrite) {
				_, _ = f.Write(buf[:len(buf)/2]) // leave a genuinely torn tail
			}
			return fmt.Errorf("wal: write: %w", err)
		}
		n, err := f.Write(buf)
		if err != nil {
			return fmt.Errorf("wal: write: %w", err)
		}
		if n != len(buf) {
			return fmt.Errorf("wal: short write: %d of %d bytes", n, len(buf))
		}
	}
	faultinject.Crash(faultinject.CrashWALFsyncBefore)
	if err := faultinject.Err(faultinject.ErrWALSync); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	faultinject.Crash(faultinject.CrashWALFsyncAfter)
	l.mu.Lock()
	l.batches++
	l.fsyncs++
	if len(l.fsyncMs) < fsyncSampleCap {
		l.fsyncMs = append(l.fsyncMs, ms)
	} else {
		l.fsyncMs[l.fsyncAt] = ms
	}
	l.fsyncAt = (l.fsyncAt + 1) % fsyncSampleCap
	l.mu.Unlock()
	return nil
}

// Rotate seals the current segment and starts a new one, returning the
// paths of all sealed segments (every segment but the new one). Checkpoints
// call it first: records staged after Rotate land in the new segment, so
// once the checkpoint's table snapshots are durable the sealed segments are
// fully covered and can be handed to Prune.
func (l *Log) Rotate() ([]string, error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return nil, err
	}
	seq := l.seq + 1
	l.mu.Unlock()

	nf, err := os.OpenFile(filepath.Join(l.dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: rotate: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		nf.Close()
		return nil, fmt.Errorf("wal: rotate: sync dir: %w", err)
	}

	l.mu.Lock()
	old := l.f
	l.f = nf
	l.seq = seq
	l.mu.Unlock()
	if err := old.Close(); err != nil {
		return nil, fmt.Errorf("wal: rotate: close sealed segment: %w", err)
	}
	faultinject.Crash(faultinject.CrashWALRotateSealed)

	paths, seqs, err := listSegments(l.dir)
	if err != nil {
		return nil, err
	}
	sealed := make([]string, 0, len(paths))
	for i, p := range paths {
		if seqs[i] < seq {
			sealed = append(sealed, p)
		}
	}
	return sealed, nil
}

// Prune deletes sealed segments (from a previous Rotate) whose records are
// covered by durable snapshots, and reclaims their bytes from SizeBytes.
func (l *Log) Prune(sealed []string) error {
	faultinject.Crash(faultinject.CrashWALPruneBefore)
	var freed int64
	for _, p := range sealed {
		if fi, err := os.Stat(p); err == nil {
			freed += fi.Size()
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: prune: %w", err)
		}
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: prune: sync dir: %w", err)
	}
	faultinject.Crash(faultinject.CrashWALPruneAfter)
	l.mu.Lock()
	l.size -= freed
	l.mu.Unlock()
	return nil
}

// SizeBytes returns the on-disk byte total across live segments (staged
// bytes included): the checkpoint trigger.
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats snapshots the log's counters. The fsync samples are copied under
// the lock and sorted outside it, so a slow scrape never stalls appenders
// waiting on mu in the fsync hot path.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	sorted := append([]float64(nil), l.fsyncMs...)
	st := Stats{
		Appends:   l.appends,
		Batches:   l.batches,
		Fsyncs:    l.fsyncs,
		Bytes:     l.bytes,
		SizeBytes: l.size,
		Broken:    l.broken != nil,
	}
	l.mu.Unlock()
	sort.Float64s(sorted)
	st.FsyncP50Ms = quantile(sorted, 0.50)
	st.FsyncP99Ms = quantile(sorted, 0.99)
	return st
}

// quantile reads q from an ascending sample list (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Close flushes staged records and closes the current segment. Appends
// after Close fail.
func (l *Log) Close() error {
	syncErr := l.Sync()
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	if l.broken == nil {
		l.broken = fmt.Errorf("wal: closed")
	}
	f := l.f
	l.f = nil
	l.mu.Unlock()
	if f != nil {
		if err := f.Close(); err != nil && syncErr == nil {
			return err
		}
	}
	return syncErr
}
