package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// collect opens dir and gathers every replayed record.
func collect(t *testing.T, dir string) (*Log, []Record, *ReplayInfo) {
	t.Helper()
	var recs []Record
	l, info, err := Open(dir, func(r Record) error {
		// Table/Data alias the scan buffer; copy for later comparison.
		recs = append(recs, Record{Op: r.Op, Table: r.Table, Gen: r.Gen, Data: append([]byte(nil), r.Data...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, recs, info
}

func rec(i int) Record {
	return Record{Op: 2, Table: "t", Gen: uint64(i + 1), Data: []byte(fmt.Sprintf("row-%d", i))}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, info := collect(t, dir)
	if len(recs) != 0 || info.Segments != 0 {
		t.Fatalf("fresh dir: got %d records, %d segments", len(recs), info.Segments)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != n || st.Fsyncs == 0 || st.Bytes == 0 {
		t.Fatalf("stats after appends: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, got, info := collect(t, dir)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	if info.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", info.TruncatedBytes)
	}
	for i, r := range got {
		want := rec(i)
		if r.Op != want.Op || r.Table != want.Table || r.Gen != want.Gen || !bytes.Equal(r.Data, want.Data) {
			t.Fatalf("record %d: got %+v want %+v", i, r, want)
		}
	}
}

func TestEmptyLogAndEmptySegment(t *testing.T) {
	dir := t.TempDir()
	l, recs, _ := collect(t, dir)
	if len(recs) != 0 {
		t.Fatalf("empty dir replayed %d records", len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Reopen over the zero-length segment Close left behind.
	l2, recs, info := collect(t, dir)
	if len(recs) != 0 || info.Segments != 1 || info.SizeBytes != 0 {
		t.Fatalf("empty segment: records=%d segments=%d size=%d", len(recs), info.Segments, info.SizeBytes)
	}
	if err := l2.Append(rec(0)); err != nil {
		t.Fatalf("append after empty reopen: %v", err)
	}
	l2.Close()
	_, recs, _ = collect(t, dir)
	if len(recs) != 1 {
		t.Fatalf("got %d records after append to reopened empty log", len(recs))
	}
}

// seg1 returns the path of the first segment.
func seg1(t *testing.T, dir string) string {
	t.Helper()
	paths, _, err := listSegments(dir)
	if err != nil || len(paths) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return paths[0]
}

func TestTornFinalRecordTruncated(t *testing.T) {
	for _, cut := range []int{1, 4, 7, 11} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _, _ := collect(t, dir)
			for i := 0; i < 3; i++ {
				if err := l.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()
			p := seg1(t, dir)
			fi, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(p, fi.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}
			l2, recs, info := collect(t, dir)
			if len(recs) != 2 {
				t.Fatalf("torn tail: replayed %d records, want 2", len(recs))
			}
			if info.TruncatedBytes == 0 {
				t.Fatalf("torn tail not reported: %+v", info)
			}
			// The log must keep working after the repair, and the repaired
			// tail must replay cleanly.
			if err := l2.Append(rec(9)); err != nil {
				t.Fatalf("append after repair: %v", err)
			}
			l2.Close()
			_, recs, info = collect(t, dir)
			if len(recs) != 3 || info.TruncatedBytes != 0 {
				t.Fatalf("after repair+append: %d records, truncated=%d", len(recs), info.TruncatedBytes)
			}
			if recs[2].Gen != rec(9).Gen {
				t.Fatalf("appended record lost after repair: %+v", recs[2])
			}
		})
	}
}

func TestZeroPaddedTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir)
	for i := 0; i < 2; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	f, err := os.OpenFile(seg1(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 37)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, recs, info := collect(t, dir)
	if len(recs) != 2 || info.TruncatedBytes != 37 {
		t.Fatalf("zero tail: records=%d truncated=%d", len(recs), info.TruncatedBytes)
	}
}

func TestCorruptCRCMidLogFailsStop(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir)
	for i := 0; i < 3; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	p := seg1(t, dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the FIRST record: later records are intact,
	// so this cannot be a torn tail and replay must refuse to continue.
	data[frameHeaderSize+3] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, func(Record) error { return nil })
	if err == nil {
		t.Fatal("Open succeeded over a mid-log CRC corruption")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") || !strings.Contains(err.Error(), "refusing to skip") {
		t.Fatalf("corruption error should be explicit about fail-stop, got: %v", err)
	}
}

func TestTornRecordInSealedSegmentFailsStop(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir)
	if err := l.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	p := seg1(t, dir)
	fi, _ := os.Stat(p)
	if err := os.Truncate(p, fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "sealed segment") {
		t.Fatalf("torn sealed segment must fail-stop, got: %v", err)
	}
}

func TestRotateAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir)
	for i := 0; i < 4; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 1 {
		t.Fatalf("sealed %d segments, want 1", len(sealed))
	}
	for i := 4; i < 6; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Both segments replay, in order, before any prune.
	_, recs, info := collect(t, dir)
	if len(recs) != 6 || info.Segments != 2 {
		t.Fatalf("pre-prune: %d records over %d segments", len(recs), info.Segments)
	}
	for i, r := range recs {
		if r.Gen != uint64(i+1) {
			t.Fatalf("record %d out of order: gen %d", i, r.Gen)
		}
	}

	l2, _, _ := collect(t, dir)
	if err := l2.Prune(sealed); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs, info = collect(t, dir)
	if len(recs) != 2 || info.Segments != 1 {
		t.Fatalf("post-prune: %d records over %d segments", len(recs), info.Segments)
	}
	if recs[0].Gen != 5 || recs[1].Gen != 6 {
		t.Fatalf("post-prune records: %+v", recs)
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir)
	const writers, per = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers*per)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				errs <- l.Append(Record{Op: 2, Table: "t", Gen: 1, Data: []byte(fmt.Sprintf("w%d-%d", w, i))})
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent append: %v", err)
		}
	}
	st := l.Stats()
	if st.Appends != writers*per {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*per)
	}
	// Group commit: batches can never exceed appends, and with 8 goroutines
	// racing one fsync the batch count is essentially always lower; assert
	// only the invariant to stay deterministic.
	if st.Batches > st.Appends || st.Batches == 0 {
		t.Fatalf("batches = %d vs appends = %d", st.Batches, st.Appends)
	}
	l.Close()
	_, recs, _ := collect(t, dir)
	if len(recs) != writers*per {
		t.Fatalf("replayed %d, want %d", len(recs), writers*per)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir)
	l.Close()
	if err := l.Append(rec(0)); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "tables"), 0o755); err != nil {
		t.Fatal(err)
	}
	l, recs, info := collect(t, dir)
	if len(recs) != 0 || info.Segments != 0 {
		t.Fatalf("foreign files treated as segments: %+v", info)
	}
	l.Close()
}
