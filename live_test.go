package qagview_test

import (
	"math"
	"testing"

	"qagview"
)

// TestLiveFacade drives the public live-table surface end to end: build a
// summarizer, wrap it in a Live, apply a batch, refresh from a re-run query
// result, and check data versioning on the precomputed stores — with every
// generation's output equal to a cold rebuild over the same rows.
func TestLiveFacade(t *testing.T) {
	attrs := []string{"x", "y"}
	rows := [][]string{
		{"a", "p"}, {"b", "p"}, {"a", "q"}, {"b", "q"}, {"c", "p"}, {"c", "q"},
	}
	vals := []float64{9, 8, 7, 6, 5, 4}
	sum, err := qagview.NewSummarizerFromRows(attrs, rows, vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	live := qagview.NewLive(sum)
	if live.DataVersion() != 1 {
		t.Fatalf("fresh data version %d", live.DataVersion())
	}
	st, err := live.Precompute(1, 3, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 1 {
		t.Fatalf("store generation %d, want 1", st.Generation())
	}

	// Batch append below the top L plus one delete.
	stats, err := live.ApplyDelta(qagview.DeltaBatch{
		AppendRows:  [][]string{{"d", "p"}},
		AppendVals:  []float64{1},
		DeleteRanks: []int{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FastPath || stats.Appended != 1 || stats.Deleted != 1 {
		t.Fatalf("batch stats %+v", stats)
	}
	if live.DataVersion() != 2 || live.Summarizer().N() != 6 {
		t.Fatalf("after batch: version %d, n %d", live.DataVersion(), live.Summarizer().N())
	}

	// Refresh from a "re-run query": crown a new leader (top-L churn) and
	// change one value.
	res := &qagview.Result{
		GroupBy: attrs,
		Rows: [][]string{
			{"e", "q"}, {"a", "p"}, {"b", "p"}, {"a", "q"}, {"b", "q"}, {"c", "p"}, {"d", "p"},
		},
		Vals: []float64{11, 9, 8, 7, 6, 5.5, 1},
	}
	stats, changed, err := live.Refresh(res)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || stats.FastPath {
		t.Fatalf("leader refresh: changed=%v stats=%+v", changed, stats)
	}
	if live.DataVersion() != 3 {
		t.Fatalf("version after refresh %d", live.DataVersion())
	}
	st, err = live.Precompute(1, 3, []int{1}, qagview.WithStoreGeneration(99))
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 99 {
		t.Fatalf("explicit store generation %d, want 99", st.Generation())
	}

	// The maintained state must match a cold build over the same result.
	cold, err := qagview.NewSummarizer(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	coldStore, err := cold.Precompute(1, 3, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		warmSol, werr := st.Solution(k, 1)
		coldSol, cerr := coldStore.Solution(k, 1)
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("k=%d: error mismatch %v vs %v", k, werr, cerr)
		}
		if werr != nil {
			continue
		}
		if math.Float64bits(warmSol.AvgValue()) != math.Float64bits(coldSol.AvgValue()) {
			t.Fatalf("k=%d: objective %v vs %v", k, warmSol.AvgValue(), coldSol.AvgValue())
		}
		wr := live.Summarizer().Format(warmSol, true)
		cr := cold.Format(coldSol, true)
		if wr != cr {
			t.Fatalf("k=%d rendered solutions differ:\n%s\nvs\n%s", k, wr, cr)
		}
	}

	// An unchanged refresh is a no-op.
	if _, changed, err := live.Refresh(res); err != nil || changed {
		t.Fatalf("no-op refresh: changed=%v err=%v", changed, err)
	}
	if live.DataVersion() != 3 {
		t.Fatalf("no-op refresh bumped the version to %d", live.DataVersion())
	}
}
