package qagview

import (
	"bytes"
	"strings"
	"testing"

	"qagview/internal/movielens"
	"qagview/internal/relation"
)

func movieDB(t *testing.T) *DB {
	t.Helper()
	rel, err := movielens.Generate(movielens.Config{Users: 300, Movies: 400, Ratings: 40_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	if err := db.Register(rel); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDBRegisterAndQuery(t *testing.T) {
	db := movieDB(t)
	if got := db.Tables(); len(got) != 1 || got[0] != "RatingTable" {
		t.Fatalf("Tables = %v", got)
	}
	if err := db.Register(nil); err == nil {
		t.Error("nil relation accepted")
	}
	if _, err := db.Table("nope"); err == nil {
		t.Error("unknown table accepted")
	} else if !strings.Contains(err.Error(), "registered tables: RatingTable") {
		t.Errorf("unknown-table error %q does not list registered tables", err)
	}
	if _, err := NewDB().Table("nope"); err == nil || !strings.Contains(err.Error(), "no tables registered") {
		t.Errorf("empty-catalog error = %v", err)
	}
	res, err := db.Query(`SELECT agegrp, gender, avg(rating) AS val FROM RatingTable
		WHERE genre_adventure = 1 GROUP BY agegrp, gender HAVING count(*) > 20 ORDER BY val DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() < 4 {
		t.Fatalf("only %d groups", res.N())
	}
}

// TestEndToEndRunningExample exercises the full paper workflow: query →
// summarizer → clusters → expansion → validation, as in Example 1.2
// (k=4, L=8, D=2).
func TestEndToEndRunningExample(t *testing.T) {
	db := movieDB(t)
	res, err := db.Query(`SELECT hdec, agegrp, gender, occupation, avg(rating) AS val
		FROM RatingTable WHERE genre_adventure = 1
		GROUP BY hdec, agegrp, gender, occupation HAVING count(*) > 10 ORDER BY val DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() < 8 {
		t.Skipf("synthetic data too sparse for this configuration: %d groups", res.N())
	}
	s, err := NewSummarizer(res, res.N())
	if err != nil {
		t.Fatal(err)
	}
	p := Params{K: 4, L: 8, D: 2}
	sol, err := s.Summarize(Hybrid, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(p, sol); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if sol.Size() > 4 {
		t.Errorf("size = %d", sol.Size())
	}
	rows := s.Rows(sol)
	if len(rows) != sol.Size() {
		t.Fatalf("Rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Pattern) != 4 {
			t.Errorf("pattern width = %d", len(r.Pattern))
		}
		if len(r.Members) != r.Size {
			t.Errorf("members %d != size %d", len(r.Members), r.Size)
		}
	}
	text := s.Format(sol, true)
	if !strings.Contains(text, "avg val") || !strings.Contains(text, "#") {
		t.Errorf("Format output malformed:\n%s", text)
	}
	// Lower bound is never better.
	if s.LowerBound().AvgValue() > sol.AvgValue()+1e-9 {
		t.Error("trivial solution beats the summary")
	}
}

func TestSummarizerPrecomputeAndCompare(t *testing.T) {
	db := movieDB(t)
	res, err := db.Query(`SELECT agegrp, gender, occupation, avg(rating) AS val
		FROM RatingTable GROUP BY agegrp, gender, occupation HAVING count(*) > 30 ORDER BY val DESC`)
	if err != nil {
		t.Fatal(err)
	}
	L := 15
	if res.N() < L {
		t.Fatalf("need at least %d groups, have %d", L, res.N())
	}
	s, err := NewSummarizer(res, L)
	if err != nil {
		t.Fatal(err)
	}
	store, err := s.Precompute(2, 8, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	solA, err := store.Solution(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	solB, err := store.Solution(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := s.Compare(solA, solB)
	if err != nil {
		t.Fatal(err)
	}
	order, err := diff.OptimalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if diff.TotalDistance(order) > diff.TotalDistance(diff.DefaultOrder()) {
		t.Error("optimal placement worse than default")
	}
	g := store.Guidance()
	if len(g.Series) != 2 {
		t.Errorf("guidance series = %d", len(g.Series))
	}
}

func TestNewSummarizerErrors(t *testing.T) {
	if _, err := NewSummarizer(nil, 5); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := NewSummarizerFromRows([]string{"a"}, [][]string{{"x"}}, []float64{1}, 9); err == nil {
		t.Error("L > N accepted")
	}
}

func TestNewSummarizerFromRowsDirect(t *testing.T) {
	s, err := NewSummarizerFromRows(
		[]string{"color", "size"},
		[][]string{{"red", "s"}, {"red", "m"}, {"blue", "s"}, {"blue", "m"}},
		[]float64{4, 3, 2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || s.M() != 2 || s.L() != 2 {
		t.Errorf("dims: N=%d M=%d L=%d", s.N(), s.M(), s.L())
	}
	if got := s.Attrs(); got[0] != "color" {
		t.Errorf("attrs = %v", got)
	}
	sol, err := s.Summarize(BottomUp, Params{K: 1, L: 2, D: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Both top tuples are red; merging them gives (red, *).
	pat := s.Rows(sol)[0].Pattern
	if pat[0] != "red" || pat[1] != "*" {
		t.Errorf("pattern = %v, want (red, *)", pat)
	}
}

func TestReadCSVReexport(t *testing.T) {
	r, err := ReadCSV(strings.NewReader("a,v\nx,1\ny,2\n"), "t", map[string]Kind{"v": KindFloat})
	if err != nil {
		t.Fatal(err)
	}
	var _ *Relation = r
	if r.NumRows() != 2 {
		t.Errorf("rows = %d", r.NumRows())
	}
	var _ *relation.Relation = r // alias identity
}

func TestStoreEncodeDecodeViaFacade(t *testing.T) {
	s, err := NewSummarizerFromRows(
		[]string{"a", "b"},
		[][]string{{"x", "p"}, {"x", "q"}, {"y", "p"}, {"y", "q"}, {"z", "p"}},
		[]float64{5, 4, 3, 2, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	store, err := s.Precompute(1, 3, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := s.DecodeStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := store.Solution(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Solution(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgValue() != b.AvgValue() || a.Size() != b.Size() {
		t.Error("decoded store diverges")
	}
}
