#!/usr/bin/env bash
# e2e_smoke.sh — build qagviewd, start it against the MovieLens sample, and
# drive the session / solution / diff endpoints end to end, asserting 200s
# and a non-empty solution. CI runs this as the e2e job; locally:
#
#     ./scripts/e2e_smoke.sh [port]
set -euo pipefail

PORT="${1:-8093}"
BASE="http://127.0.0.1:${PORT}"
SQL='SELECT hdec, agegrp, gender, avg(rating) AS val FROM RatingTable GROUP BY hdec, agegrp, gender HAVING count(*) > 50 ORDER BY val DESC'

cd "$(dirname "$0")/.."

echo "== building qagviewd"
go build -o /tmp/qagviewd ./cmd/qagviewd

DEBUG_PORT=$((PORT + 1))
DEBUG_BASE="http://127.0.0.1:${DEBUG_PORT}"

echo "== starting qagviewd on :${PORT} (MovieLens sample, 20k ratings, tracing on, debug on :${DEBUG_PORT})"
/tmp/qagviewd -addr "127.0.0.1:${PORT}" -sample movielens -sample-ratings 20000 \
  -trace -trace-ring 64 -debug-addr "127.0.0.1:${DEBUG_PORT}" &
SERVER_PID=$!
trap 'kill "${SERVER_PID}" 2>/dev/null || true' EXIT

fail() { echo "e2e: FAIL — $*" >&2; exit 1; }

# curl wrapper: ck <expected-code> <outfile> <curl args...>
ck() {
  local want="$1" out="$2"; shift 2
  local code
  code=$(curl -sS -o "$out" -w '%{http_code}' "$@") || fail "curl $* did not complete"
  [ "$code" = "$want" ] || { cat "$out" >&2; fail "$* returned HTTP $code, want $want"; }
}

echo "== waiting for /healthz"
for i in $(seq 1 100); do
  if curl -fsS "${BASE}/healthz" >/dev/null 2>&1; then break; fi
  [ "$i" = 100 ] && fail "server did not become healthy"
  sleep 0.2
done

OUT=$(mktemp -d)

echo "== POST /v1/queries"
ck 200 "$OUT/query.json" -X POST "${BASE}/v1/queries" \
  -H 'Content-Type: application/json' \
  -d "{\"sql\": \"${SQL}\", \"limit\": 3}"
grep -q '"n"' "$OUT/query.json" || fail "query response has no result count"

echo "== POST /v1/sessions"
ck 201 "$OUT/session.json" -X POST "${BASE}/v1/sessions" \
  -H 'Content-Type: application/json' \
  -d "{\"sql\": \"${SQL}\", \"l\": 8, \"kmin\": 1, \"kmax\": 6, \"ds\": [1, 2]}"
SESSION=$(sed -n 's/.*"session": "\([^"]*\)".*/\1/p' "$OUT/session.json" | head -1)
[ -n "$SESSION" ] || { cat "$OUT/session.json" >&2; fail "no session id in response"; }
echo "   session: ${SESSION}"

echo "== GET solution (k=3, d=1)"
ck 200 "$OUT/solution.json" "${BASE}/v1/sessions/${SESSION}/solution?k=3&d=1"
grep -q '"pattern"' "$OUT/solution.json" || { cat "$OUT/solution.json" >&2; fail "solution has no clusters"; }
grep -q '"size": 0' "$OUT/solution.json" && fail "solution contains an empty cluster"

echo "== GET diff (k=2 -> k=3)"
ck 200 "$OUT/diff.json" "${BASE}/v1/sessions/${SESSION}/diff?k1=2&d1=1&k2=3&d2=1"
grep -q '"overlap"' "$OUT/diff.json" || { cat "$OUT/diff.json" >&2; fail "diff has no overlap matrix"; }

echo "== live tables: session refresh after mid-session appends"
SQL2='SELECT g, h, avg(v) AS val FROM live GROUP BY g, h ORDER BY val DESC'
ck 201 "$OUT/live_table.json" -X POST "${BASE}/v1/tables" \
  -H 'Content-Type: application/json' \
  -d '{"name": "live", "attrs": ["g", "h", "v"], "kinds": {"v": "float"}, "rows": [["a","x","9"],["a","y","8"],["b","x","7"],["b","y","6"],["c","x","5"],["c","y","4"]]}'
ck 201 "$OUT/live_session.json" -X POST "${BASE}/v1/sessions" \
  -H 'Content-Type: application/json' \
  -d "{\"sql\": \"${SQL2}\", \"l\": 4, \"kmin\": 1, \"kmax\": 3, \"ds\": [1]}"
LIVESESS=$(sed -n 's/.*"session": "\([^"]*\)".*/\1/p' "$OUT/live_session.json" | head -1)
[ -n "$LIVESESS" ] || { cat "$OUT/live_session.json" >&2; fail "no live session id"; }
ck 200 "$OUT/live_sol1.json" "${BASE}/v1/sessions/${LIVESESS}/solution?k=2&d=1"
grep -q '"data_version": 1' "$OUT/live_sol1.json" || { cat "$OUT/live_sol1.json" >&2; fail "fresh live solution should be data_version 1"; }
ck 200 "$OUT/append.json" -X POST "${BASE}/v1/tables/live/rows" \
  -H 'Content-Type: application/json' \
  -d '{"rows": [["c","y","50"], ["d","x","1"]]}'
grep -q '"data_version": 2' "$OUT/append.json" || { cat "$OUT/append.json" >&2; fail "append should bump the table to data_version 2"; }
ck 200 "$OUT/live_sol2.json" "${BASE}/v1/sessions/${LIVESESS}/solution?k=2&d=1"
grep -q '"data_version": 2' "$OUT/live_sol2.json" || { cat "$OUT/live_sol2.json" >&2; fail "refreshed solution should carry data_version 2"; }
grep -q '"pattern"' "$OUT/live_sol2.json" || { cat "$OUT/live_sol2.json" >&2; fail "refreshed solution has no clusters"; }

echo "== multi-table join over the sample star schema"
JSQL='SELECT agegrp, gender, avg(rating) AS val FROM ratings JOIN users ON ratings.user_id = users.user_id GROUP BY agegrp, gender ORDER BY val DESC'
ck 200 "$OUT/join_star.json" -X POST "${BASE}/v1/queries" \
  -H 'Content-Type: application/json' \
  -d "{\"sql\": \"${JSQL}\", \"limit\": 3}"
tr -d ' \n' < "$OUT/join_star.json" | grep -q '"tables":\["ratings","users"\]' || { cat "$OUT/join_star.json" >&2; fail "star join response does not list both FROM tables"; }

echo "== join over live tables: append to the build side changes the result"
JSQL2='SELECT region, live.g, avg(v) AS val FROM live JOIN region ON live.g = region.g GROUP BY region, live.g ORDER BY val DESC'
ck 201 "$OUT/join_dim.json" -X POST "${BASE}/v1/tables" \
  -H 'Content-Type: application/json' \
  -d '{"name": "region", "attrs": ["g", "region"], "rows": [["a","east"],["b","east"],["c","west"]]}'
ck 200 "$OUT/join_q1.json" -X POST "${BASE}/v1/queries" \
  -H 'Content-Type: application/json' -d "{\"sql\": \"${JSQL2}\", \"limit\": 100}"
grep -q '"n": 3' "$OUT/join_q1.json" || { cat "$OUT/join_q1.json" >&2; fail "live join should cover 3 matched groups"; }
# Rebind group d (unmatched so far) by appending to the dimension: the next
# read of the same SQL must see the new group — the join result changed.
ck 200 "$OUT/join_append.json" -X POST "${BASE}/v1/tables/region/rows" \
  -H 'Content-Type: application/json' -d '{"rows": [["d","north"]]}'
grep -q '"data_version": 2' "$OUT/join_append.json" || { cat "$OUT/join_append.json" >&2; fail "dimension append should bump its data_version"; }
ck 200 "$OUT/join_q2.json" -X POST "${BASE}/v1/queries" \
  -H 'Content-Type: application/json' -d "{\"sql\": \"${JSQL2}\", \"limit\": 100}"
grep -q '"n": 4' "$OUT/join_q2.json" || { cat "$OUT/join_q2.json" >&2; fail "live join should see the appended dimension row"; }
grep -q 'north' "$OUT/join_q2.json" || { cat "$OUT/join_q2.json" >&2; fail "appended region missing from join result"; }

echo "== join session tracks every FROM table's generation"
ck 201 "$OUT/join_sess.json" -X POST "${BASE}/v1/sessions" \
  -H 'Content-Type: application/json' \
  -d "{\"sql\": \"${JSQL2}\", \"l\": 4, \"kmin\": 1, \"kmax\": 3, \"ds\": [1]}"
JOINSESS=$(sed -n 's/.*"session": "\([^"]*\)".*/\1/p' "$OUT/join_sess.json" | head -1)
[ -n "$JOINSESS" ] || { cat "$OUT/join_sess.json" >&2; fail "no join session id"; }
# live is at generation 2 (appended earlier) and region at 2: summed version 4.
grep -q '"data_version": 4' "$OUT/join_sess.json" || { cat "$OUT/join_sess.json" >&2; fail "join session data_version should sum both tables' generations"; }
ck 200 "$OUT/join_sol1.json" "${BASE}/v1/sessions/${JOINSESS}/solution?k=2&d=1"
ck 200 "$OUT/join_append2.json" -X POST "${BASE}/v1/tables/region/rows" \
  -H 'Content-Type: application/json' -d '{"rows": [["e","south"]]}'
ck 200 "$OUT/join_sol2.json" "${BASE}/v1/sessions/${JOINSESS}/solution?k=2&d=1"
grep -q '"data_version": 5' "$OUT/join_sol2.json" || { cat "$OUT/join_sol2.json" >&2; fail "join session should refresh when a dimension table changes"; }
ck 200 "$OUT/join_del.json" -X DELETE "${BASE}/v1/sessions/${JOINSESS}"

echo "== DELETE /v1/sessions/{id} evicts"
ck 200 "$OUT/del.json" -X DELETE "${BASE}/v1/sessions/${LIVESESS}"
ck 404 "$OUT/del404.json" "${BASE}/v1/sessions/${LIVESESS}"
ck 404 "$OUT/del404b.json" -X DELETE "${BASE}/v1/sessions/${LIVESESS}"

echo "== error paths stay errors"
ck 404 "$OUT/err404.json" "${BASE}/v1/sessions/s-nope/solution?k=1&d=1"
ck 400 "$OUT/err400.json" "${BASE}/v1/sessions/${SESSION}/solution?k=abc&d=1"

echo "== GET /metrics"
ck 200 "$OUT/metrics.json" "${BASE}/metrics"
grep -q '"live": 1' "$OUT/metrics.json" || { cat "$OUT/metrics.json" >&2; fail "metrics do not report the live session"; }

echo "== every response carries X-Request-Id"
HDRS=$(curl -sS -D - -o /dev/null "${BASE}/healthz")
echo "$HDRS" | grep -qi '^x-request-id:' || { echo "$HDRS" >&2; fail "no X-Request-Id header on /healthz"; }
ck 400 "$OUT/rid_err.json" -X POST "${BASE}/v1/queries" \
  -H 'Content-Type: application/json' -d '{"sql": ""}'
grep -q '"request_id"' "$OUT/rid_err.json" || { cat "$OUT/rid_err.json" >&2; fail "error body carries no request_id"; }

echo "== traced join query returns an inline span tree (server -> engine -> merge)"
ck 200 "$OUT/traced.json" -X POST "${BASE}/v1/queries?trace=1" \
  -H 'Content-Type: application/json' -d "{\"sql\": \"${JSQL}\", \"limit\": 3}"
for span in engine.execute join.build join.probe merge; do
  grep -q "\"${span}\"" "$OUT/traced.json" || { cat "$OUT/traced.json" >&2; fail "inline trace missing span ${span}"; }
done

echo "== profiled query returns per-operator rows and wall time"
ck 200 "$OUT/profiled.json" -X POST "${BASE}/v1/queries" \
  -H 'Content-Type: application/json' -d "{\"sql\": \"${SQL}\", \"profile\": true, \"limit\": 3}"
grep -q '"profile"' "$OUT/profiled.json" || { cat "$OUT/profiled.json" >&2; fail "no profile in profiled query"; }
grep -q 'operator' "$OUT/profiled.json" || { cat "$OUT/profiled.json" >&2; fail "no rendered profile_text table"; }

echo "== GET /debug/traces lists the ring; one trace is retrievable by id"
ck 200 "$OUT/traces.json" "${BASE}/debug/traces"
grep -q '"enabled": true' "$OUT/traces.json" || { cat "$OUT/traces.json" >&2; fail "trace ring reports disabled"; }
TRACE_ID=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$OUT/traces.json" | head -1)
[ -n "$TRACE_ID" ] || { cat "$OUT/traces.json" >&2; fail "no trace ids in ring"; }
ck 200 "$OUT/trace_one.json" "${BASE}/debug/traces/${TRACE_ID}"
grep -q '"root"' "$OUT/trace_one.json" || { cat "$OUT/trace_one.json" >&2; fail "trace by id has no span tree"; }
ck 404 "$OUT/trace_404.json" "${BASE}/debug/traces/nope"

echo "== debug listener serves pprof and the trace ring on its own port"
ck 200 "$OUT/debug_traces.json" "${DEBUG_BASE}/debug/traces"
ck 200 "$OUT/debug_pprof.txt" "${DEBUG_BASE}/debug/pprof/cmdline"

echo "== GET /metrics?format=prometheus parses and carries the core families"
ck 200 "$OUT/metrics.prom" "${BASE}/metrics?format=prometheus"
go run ./cmd/promlint \
  -require qagviewd_requests_total,qagviewd_request_latency_ms,qagviewd_uptime_seconds,qagviewd_goroutines,qagviewd_heap_alloc_bytes,qagviewd_trace_ring_occupancy,qagviewd_traces_total \
  < "$OUT/metrics.prom" || fail "prometheus exposition failed promlint"

echo "== durability: acked writes survive kill -9"
kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true
WALDIR=$(mktemp -d)

start_durable() {
  /tmp/qagviewd -addr "127.0.0.1:${PORT}" -wal "${WALDIR}" &
  SERVER_PID=$!
  for i in $(seq 1 100); do
    if curl -fsS "${BASE}/healthz" >/dev/null 2>&1; then return 0; fi
    [ "$i" = 100 ] && fail "durable server did not become healthy"
    sleep 0.2
  done
}

start_durable
DSQL='SELECT g, avg(v) AS val FROM durable GROUP BY g ORDER BY val DESC'
ck 201 "$OUT/dur_table.json" -X POST "${BASE}/v1/tables" \
  -H 'Content-Type: application/json' \
  -d '{"name": "durable", "attrs": ["g", "v"], "kinds": {"v": "float"}, "rows": [["a","1"],["b","2"],["c","3"]]}'
ck 200 "$OUT/dur_append.json" -X POST "${BASE}/v1/tables/durable/rows" \
  -H 'Content-Type: application/json' \
  -d '{"rows": [["a","10"], ["d","4"]]}'
grep -q '"data_version": 2' "$OUT/dur_append.json" || { cat "$OUT/dur_append.json" >&2; fail "durable append should ack data_version 2"; }
ck 200 "$OUT/dur_q1.json" -X POST "${BASE}/v1/queries" \
  -H 'Content-Type: application/json' -d "{\"sql\": \"${DSQL}\"}"

echo "   kill -9 then restart against ${WALDIR}"
kill -9 "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
start_durable
ck 200 "$OUT/dur_tables.json" "${BASE}/v1/tables"
grep -q '"durable": 2' "$OUT/dur_tables.json" || { cat "$OUT/dur_tables.json" >&2; fail "recovered table should report data_version 2"; }
ck 200 "$OUT/dur_q2.json" -X POST "${BASE}/v1/queries" \
  -H 'Content-Type: application/json' -d "{\"sql\": \"${DSQL}\"}"
cmp -s "$OUT/dur_q1.json" "$OUT/dur_q2.json" || {
  diff "$OUT/dur_q1.json" "$OUT/dur_q2.json" >&2 || true
  fail "recovered query result differs from the pre-crash result"
}

echo "e2e: OK"
